"""Typed telemetry events: the taxonomy every sink and consumer agrees on.

Each event carries an :class:`EventKind`, the front-end cycle at which it was
observed, and a flat ``args`` payload of primitives.  Kinds group into
*categories* (``fetch`` / ``uopcache`` / ``loopcache`` / ``interval`` /
``service``) which are the unit of filtering: ``config.telemetry.events``
and the CLI's ``--events`` flag select categories, not individual kinds.

The taxonomy (DESIGN.md section 10):

========================  ==========  =============================================
kind                      category    emitted when / payload
========================  ==========  =============================================
``fetch_action``          fetch       one serving action completed
                                      (``source``, ``uops``, ``insts``, ``tid``)
``fetch_transition``      fetch       the supply path changed
                                      (``src``, ``dst``, ``tid``)
``oc_hit``                uopcache    uop cache probe hit (``pc``, ``uops``)
``oc_miss``               uopcache    uop cache probe missed (``pc``)
``oc_fill``               uopcache    entry installed (``pc``, ``fill_kind``,
                                      ``termination``, ``uops``, ``bytes``,
                                      ``lines`` — I-cache lines spanned, >1 is a
                                      CLASP fuse)
``oc_evict``              uopcache    entry displaced by replacement
                                      (``pc``, ``uops``)
``oc_dissolve``           uopcache    F-PWAC forced merge relocated foreign
                                      entries (``pc``, ``moved``, ``moved_uops``)
``oc_invalidate``         uopcache    SMC probe removed entries
                                      (``line``, ``removed``)
``oc_bypass``             uopcache    instruction too large for any entry; served
                                      by the microcode sequencer (``pc``, ``uops``)
``loop_capture``          loopcache   loop buffer locked onto a loop
                                      (``branch_pc``, ``target_pc``, ``body_uops``)
``loop_replay``           loopcache   one locked iteration replayed
                                      (``branch_pc``, ``uops``)
``loop_exit``             loopcache   control flow left the locked loop
``interval``              interval    per-interval throughput sample
                                      (``start``, ``end``, ``insts``, ``uops``,
                                      ``ipc``, ``upc``)
``worker_restart``        service     the job service replaced a dead, frozen
                                      or overdue worker process (``worker``,
                                      ``reason``, ``restarts``)
``job_quarantined``       service     a job exhausted its retries and was set
                                      aside (``job``, ``attempts``)
``checkpoint_recovered``  service     a journal dropped a torn or corrupt
                                      trailing record during load (``path``,
                                      ``dropped``, ``reason``)
``store_hit``             service     a result-store lookup was served from
                                      disk (``key``)
``store_corrupt``         service     a store record failed its checksum and
                                      was quarantined (``key``, ``reason``)
========================  ==========  =============================================

Service events timestamp from wall-free cycle 0: they are emitted by the
job-service layer, outside any simulation, where no front-end clock exists.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Mapping


class EventKind(enum.Enum):
    """Every telemetry event kind the simulator can emit."""

    FETCH_ACTION = "fetch_action"
    FETCH_TRANSITION = "fetch_transition"
    OC_HIT = "oc_hit"
    OC_MISS = "oc_miss"
    OC_FILL = "oc_fill"
    OC_EVICT = "oc_evict"
    OC_DISSOLVE = "oc_dissolve"
    OC_INVALIDATE = "oc_invalidate"
    OC_BYPASS = "oc_bypass"
    LOOP_CAPTURE = "loop_capture"
    LOOP_REPLAY = "loop_replay"
    LOOP_EXIT = "loop_exit"
    INTERVAL = "interval"
    WORKER_RESTART = "worker_restart"
    JOB_QUARANTINED = "job_quarantined"
    CHECKPOINT_RECOVERED = "checkpoint_recovered"
    STORE_HIT = "store_hit"
    STORE_CORRUPT = "store_corrupt"


#: Category of each kind (the filtering granularity).
KIND_CATEGORY: Mapping[EventKind, str] = {
    EventKind.FETCH_ACTION: "fetch",
    EventKind.FETCH_TRANSITION: "fetch",
    EventKind.OC_HIT: "uopcache",
    EventKind.OC_MISS: "uopcache",
    EventKind.OC_FILL: "uopcache",
    EventKind.OC_EVICT: "uopcache",
    EventKind.OC_DISSOLVE: "uopcache",
    EventKind.OC_INVALIDATE: "uopcache",
    EventKind.OC_BYPASS: "uopcache",
    EventKind.LOOP_CAPTURE: "loopcache",
    EventKind.LOOP_REPLAY: "loopcache",
    EventKind.LOOP_EXIT: "loopcache",
    EventKind.INTERVAL: "interval",
    EventKind.WORKER_RESTART: "service",
    EventKind.JOB_QUARANTINED: "service",
    EventKind.CHECKPOINT_RECOVERED: "service",
    EventKind.STORE_HIT: "service",
    EventKind.STORE_CORRUPT: "service",
}

#: Every selectable category, in presentation order.
EVENT_CATEGORIES = ("fetch", "uopcache", "loopcache", "interval", "service")


class TelemetryEvent:
    """One observed event: kind + front-end cycle + flat payload."""

    __slots__ = ("kind", "cycle", "args")

    def __init__(self, kind: EventKind, cycle: int,
                 args: Dict[str, Any]) -> None:
        self.kind = kind
        self.cycle = cycle
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one JSONL record).

        Payload keys must not collide with the envelope (``kind``,
        ``cycle``); the emitting sites keep the namespaces disjoint
        (e.g. fill events use ``fill_kind``).
        """
        record: Dict[str, Any] = {"kind": self.kind.value, "cycle": self.cycle}
        record.update(self.args)
        return record

    def __repr__(self) -> str:
        return (f"TelemetryEvent({self.kind.value}, cycle={self.cycle}, "
                f"{self.args!r})")
