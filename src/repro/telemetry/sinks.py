"""Telemetry sinks: where the event stream goes.

Four sinks cover the observability needs of the repo:

- :class:`RingBufferSink` — bounded (or unbounded) in-memory buffer, the tool
  of choice for tests and interactive debugging.
- :class:`JsonlSink` — one JSON object per line, the archival/processing
  format (replayable by :mod:`repro.telemetry.replay`).
- :class:`CounterSink` — aggregate per-kind counts plus per-interval IPC/UPC
  histograms; cheap enough to leave attached on long sweeps.
- :class:`ChromeTraceSink` — Chrome ``trace_event`` JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Interval
  events become counter tracks (``ph: "C"``), everything else becomes
  instant events (``ph: "i"``) on the emitting thread's track.

Sinks receive fully-constructed :class:`~repro.telemetry.events.TelemetryEvent`
objects and must not mutate them (a hub fans one object out to every sink).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Any, Deque, Dict, List, Optional, Union

from ..common.statistics import Histogram
from .events import EventKind, TelemetryEvent


class TelemetrySink:
    """Base sink: accepts events, flushes on close.  Subclasses override."""

    def accept(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush buffered output; the default is a no-op."""


class RingBufferSink(TelemetrySink):
    """Keeps the last ``capacity`` events in memory (None = unbounded)."""

    def __init__(self, capacity: Optional[int] = 65536) -> None:
        self.capacity = capacity
        self._events: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self.accepted = 0       # total events seen, including overwritten ones

    def accept(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self.accepted += 1

    @property
    def events(self) -> List[TelemetryEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring's capacity bound."""
        return self.accepted - len(self._events)

    def tail(self, count: int) -> List[TelemetryEvent]:
        """The most recent ``count`` events, oldest first."""
        if count <= 0:
            return []
        events = list(self._events)
        return events[-count:]

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TelemetrySink):
    """Writes one JSON object per event to a file or open stream."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.written = 0

    def accept(self, event: TelemetryEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self.written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class CounterSink(TelemetrySink):
    """Aggregates the stream: per-kind counts + interval IPC/UPC histograms.

    Interval samples are real-valued; the histograms bucket them in
    hundredths (an IPC of 2.37 lands in bucket 237) so distributions stay
    integer-keyed like every other histogram in the repo.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.ipc_histogram = Histogram("interval_ipc_x100")
        self.upc_histogram = Histogram("interval_upc_x100")
        self.intervals = 0

    def accept(self, event: TelemetryEvent) -> None:
        name = event.kind.value
        self.counts[name] = self.counts.get(name, 0) + 1
        if event.kind is EventKind.INTERVAL:
            self.intervals += 1
            self.ipc_histogram.record(round(100 * event.args["ipc"]))
            self.upc_histogram.record(round(100 * event.args["upc"]))


class ChromeTraceSink(TelemetrySink):
    """Exports the stream as Chrome ``trace_event`` JSON for Perfetto.

    Timestamps (``ts``) are front-end cycles interpreted as microseconds —
    the absolute scale is meaningless but relative spacing is exact, which is
    what the timeline view is for.
    """

    #: Process id shown in the trace viewer (one simulated core).
    PID = 1

    def __init__(self, target: Union[str, Path]) -> None:
        self.path = Path(target)
        self._events: List[Dict[str, Any]] = []
        self._threads_seen: Dict[int, bool] = {}

    def accept(self, event: TelemetryEvent) -> None:
        tid = int(event.args.get("tid", 0))
        self._threads_seen.setdefault(tid, True)
        if event.kind is EventKind.INTERVAL:
            self._events.append({
                "name": "throughput", "ph": "C", "ts": event.cycle,
                "pid": self.PID, "tid": tid,
                "args": {"ipc": event.args["ipc"],
                         "upc": event.args["upc"]}})
            return
        args = {key: value for key, value in event.args.items()
                if key != "tid"}
        self._events.append({
            "name": event.kind.value, "ph": "i", "ts": event.cycle,
            "pid": self.PID, "tid": tid, "s": "t", "args": args})

    def close(self) -> None:
        metadata: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": self.PID,
            "args": {"name": "repro simulator"}}]
        for tid in sorted(self._threads_seen):
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": self.PID,
                "tid": tid, "args": {"name": f"hw-thread-{tid}"}})
        document = {"traceEvents": metadata + self._events,
                    "displayTimeUnit": "ns"}
        with open(self.path, "w", encoding="utf-8") as stream:
            json.dump(document, stream)

    def __len__(self) -> int:
        return len(self._events)
