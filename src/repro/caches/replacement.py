"""Replacement policies for set-associative structures.

Policies manage per-set state for a fixed geometry and expose three hooks:
``on_hit``, ``on_fill`` and ``victim``.  ``victim`` must return an invalid way
if one exists (the caller passes the valid mask), otherwise the policy's
eviction choice.

Implemented: true LRU (Table I: L1/L2 and the uop cache), tree-PLRU (cheap
hardware approximation, used in sensitivity tests) and SRRIP (Table I: L3).
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from ..common.config import ReplacementKind
from ..common.errors import CacheError


class ReplacementPolicy(abc.ABC):
    """Per-set replacement state for a ``num_sets x num_ways`` structure."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets < 1 or num_ways < 1:
            raise CacheError("replacement policy needs >= 1 set and way")
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        ...

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        ...

    @abc.abstractmethod
    def victim(self, set_index: int, valid: Sequence[bool]) -> int:
        ...

    def _first_invalid(self, valid: Sequence[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return -1

    def _check(self, set_index: int, way: int) -> None:
        if not 0 <= set_index < self.num_sets:
            raise CacheError(f"set index {set_index} out of range")
        if not 0 <= way < self.num_ways:
            raise CacheError(f"way {way} out of range")


class TrueLru(ReplacementPolicy):
    """Exact LRU: per-set recency order, most recent last."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._order: List[List[int]] = [
            list(range(num_ways)) for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    on_fill = on_hit

    def victim(self, set_index: int, valid: Sequence[bool]) -> int:
        self._check(set_index, 0)
        invalid = self._first_invalid(valid)
        if invalid >= 0:
            return invalid
        return self._order[set_index][0]

    def recency_order(self, set_index: int) -> List[int]:
        """LRU -> MRU way order (exposed for the uop cache's RAC policy)."""
        return list(self._order[set_index])

    def mru_way(self, set_index: int) -> int:
        return self._order[set_index][-1]


class TreePlru(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        if num_ways & (num_ways - 1):
            raise CacheError("tree-PLRU requires a power-of-two way count")
        self._bits: List[List[int]] = [
            [0] * max(1, num_ways - 1) for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        width = self.num_ways
        while width > 1:
            half = width // 2
            go_right = (way % width) >= half
            bits[node] = 0 if go_right else 1  # point away from touched way
            node = 2 * node + (2 if go_right else 1)
            width = half

    def on_hit(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._touch(set_index, way)

    on_fill = on_hit

    def victim(self, set_index: int, valid: Sequence[bool]) -> int:
        self._check(set_index, 0)
        invalid = self._first_invalid(valid)
        if invalid >= 0:
            return invalid
        bits = self._bits[set_index]
        node = 0
        way = 0
        width = self.num_ways
        while width > 1:
            half = width // 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            width = half
        return way


class Srrip(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values."""

    MAX_RRPV = 3

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._rrpv: List[List[int]] = [
            [self.MAX_RRPV] * num_ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._rrpv[set_index][way] = self.MAX_RRPV - 1  # "long" re-reference

    def victim(self, set_index: int, valid: Sequence[bool]) -> int:
        self._check(set_index, 0)
        invalid = self._first_invalid(valid)
        if invalid >= 0:
            return invalid
        rrpv = self._rrpv[set_index]
        max_rrpv = self.MAX_RRPV
        while True:
            for way, value in enumerate(rrpv):
                if value == max_rrpv:
                    return way
            for way in range(self.num_ways):
                rrpv[way] += 1


def make_policy(kind: ReplacementKind, num_sets: int,
                num_ways: int) -> ReplacementPolicy:
    if kind is ReplacementKind.LRU:
        return TrueLru(num_sets, num_ways)
    if kind is ReplacementKind.TREE_PLRU:
        return TreePlru(num_sets, num_ways)
    if kind is ReplacementKind.RRIP:
        return Srrip(num_sets, num_ways)
    raise CacheError(f"unknown replacement kind {kind}")
