"""Generic set-associative cache (tags only — the simulator models timing,
not data values).

Used for the L1-I, L1-D, L2 and L3 levels.  The uop cache has its own
structure (:mod:`repro.uopcache`) because its lines hold variable-size entries
with their own metadata.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import CacheLevelConfig
from ..common.statistics import StatGroup
from .replacement import make_policy


class SetAssociativeCache:
    """A tag array with pluggable replacement and simple invalidate support."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.num_ways = config.associativity
        self.line_bytes = config.line_bytes
        self._line_shift = self.line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._set_shift = self.num_sets.bit_length() - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * self.num_ways for _ in range(self.num_sets)]
        self._policy = make_policy(config.replacement,
                                   self.num_sets, self.num_ways)
        self.stats = StatGroup(config.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._invalidations = self.stats.counter("invalidations")

    def _index_tag(self, address: int) -> tuple:
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._set_shift

    def lookup(self, address: int, update_replacement: bool = True) -> bool:
        """True on hit.  Does not fill on miss (caller decides)."""
        set_index, tag = self._index_tag(address)
        ways = self._tags[set_index]
        for way, existing in enumerate(ways):
            if existing == tag:
                if update_replacement:
                    self._policy.on_hit(set_index, way)
                self._hits.increment()
                return True
        self._misses.increment()
        return False

    def contains(self, address: int) -> bool:
        set_index, tag = self._index_tag(address)
        return tag in self._tags[set_index]

    def fill(self, address: int) -> Optional[int]:
        """Insert the line; returns the evicted line address, if any."""
        set_index, tag = self._index_tag(address)
        ways = self._tags[set_index]
        if tag in ways:                      # already present: refresh only
            self._policy.on_hit(set_index, ways.index(tag))
            return None
        valid = [existing is not None for existing in ways]
        way = self._policy.victim(set_index, valid)
        evicted_tag = ways[way]
        ways[way] = tag
        self._policy.on_fill(set_index, way)
        self._fills.increment()
        if evicted_tag is None:
            return None
        evicted_line = (evicted_tag << self._set_shift) | set_index
        return evicted_line << self._line_shift

    def invalidate(self, address: int) -> bool:
        set_index, tag = self._index_tag(address)
        ways = self._tags[set_index]
        for way, existing in enumerate(ways):
            if existing == tag:
                ways[way] = None
                self._invalidations.increment()
                return True
        return False

    def flush(self) -> None:
        for ways in self._tags:
            for way in range(self.num_ways):
                ways[way] = None

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resident_lines(self) -> int:
        return sum(1 for ways in self._tags for t in ways if t is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SetAssociativeCache {self.config.name} "
                f"{self.num_sets}x{self.num_ways} lines={self.resident_lines()}>")
