"""Three-level cache hierarchy with instruction- and data-side access paths.

The hierarchy answers latency questions only ("how many cycles until these
bytes are available?"), which is all the timing model needs.  L2 is unified;
L3 is shared (we simulate one core, so sharing only affects capacity).  The
L1-I employs a branch-prediction-directed next-line prefetcher, as in
Table I: when fetch touches line ``L`` on the predicted path, line ``L+1`` is
prefetched, hiding the sequential-miss latency the paper's baseline assumes.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import MemoryHierarchyConfig
from ..common.statistics import StatGroup
from .replacement import TrueLru
from .setassoc import SetAssociativeCache


class MemoryHierarchy:
    """L1-I / L1-D / unified L2 / L3 / DRAM latency model."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        cfg = self.config
        self.l1i = SetAssociativeCache(cfg.l1i)
        self.l1d = SetAssociativeCache(cfg.l1d)
        self.l2 = SetAssociativeCache(cfg.l2)
        self.l3 = SetAssociativeCache(cfg.l3)
        self.stats = StatGroup("hierarchy")
        self._i_prefetches = self.stats.counter("icache_prefetches")
        self._i_prefetch_hits = self.stats.counter("icache_prefetch_line_hits")
        self._line_bytes = cfg.l1i.line_bytes
        # Recency lists for the fast paths' inlined LRU-hit update (None when
        # an L1 runs a non-LRU policy; the fast paths then call on_hit).
        self._l1i_lru = self.l1i._policy._order \
            if isinstance(self.l1i._policy, TrueLru) else None
        self._l1d_lru = self.l1d._policy._order \
            if isinstance(self.l1d._policy, TrueLru) else None

    # -- instruction side -----------------------------------------------------

    def fetch_instruction_line(self, address: int) -> int:
        """Access the I-side for the line containing ``address``; returns
        latency in cycles and fills all levels on the way down."""
        latency = self._access(address, self.l1i)
        if self.config.icache_prefetch:
            self._prefetch_next_line(address)
        return latency

    def _prefetch_next_line(self, address: int) -> None:
        next_line = (address // self._line_bytes + 1) * self._line_bytes
        if not self.l1i.contains(next_line):
            self._i_prefetches.increment()
            # Prefetch pulls the line in through the hierarchy; its latency is
            # off the critical path, so we model only the state change.
            self._fill_all(next_line, self.l1i)
        else:
            self._i_prefetch_hits.increment()

    # -- data side ------------------------------------------------------------

    def access_data(self, address: int, is_store: bool = False) -> int:
        """Load/store latency (stores complete post-retirement; we return the
        lookup latency for completeness).  A next-line stream prefetcher runs
        on L1-D misses (Table I: every data level employs prefetchers)."""
        latency = self._access(address, self.l1d)
        # Stream prefetch: keep the next line resident on every access so a
        # forward-striding stream never exposes its compulsory misses (real
        # stride prefetchers run several lines ahead; latency is off the
        # critical path, so only the state change is modeled).
        next_line = (address // self.config.l1d.line_bytes + 1) * \
            self.config.l1d.line_bytes
        if not self.l1d.contains(next_line):
            self._fill_all(next_line, self.l1d)
        return latency

    # -- fast variants (counters-only serve loop) ----------------------------

    def access_data_fast(self, address: int) -> int:
        """Counters-only :meth:`access_data`: the dominant L1-D-hit case is
        inlined (index/tag arithmetic, membership test, direct counter
        bumps); misses fall through to the shared :meth:`_miss_latency`
        machinery, so every counter and every replacement/fill state change
        is identical to the normal path."""
        l1d = self.l1d
        line = address >> l1d._line_shift
        set_index = line & l1d._set_mask
        tag = line >> l1d._set_shift
        ways = l1d._tags[set_index]
        try:
            way = ways.index(tag)
        except ValueError:
            l1d._misses.value += 1
            latency = self._miss_latency(address, l1d)
        else:
            lru = self._l1d_lru
            if lru is not None:
                order = lru[set_index]
                order.remove(way)
                order.append(way)
            else:  # pragma: no cover - non-LRU L1-D configuration
                l1d._policy.on_hit(set_index, way)
            l1d._hits.value += 1
            latency = l1d.config.hit_latency_cycles
        next_line = line + 1
        if (next_line >> l1d._set_shift) not in \
                l1d._tags[next_line & l1d._set_mask]:
            self._fill_all(next_line << l1d._line_shift, l1d)
        return latency

    def fetch_instruction_line_fast(self, address: int) -> int:
        """Counters-only :meth:`fetch_instruction_line` (same contract as
        :meth:`access_data_fast`)."""
        l1i = self.l1i
        line = address >> l1i._line_shift
        set_index = line & l1i._set_mask
        tag = line >> l1i._set_shift
        ways = l1i._tags[set_index]
        try:
            way = ways.index(tag)
        except ValueError:
            l1i._misses.value += 1
            latency = self._miss_latency(address, l1i)
        else:
            lru = self._l1i_lru
            if lru is not None:
                order = lru[set_index]
                order.remove(way)
                order.append(way)
            else:  # pragma: no cover - non-LRU L1-I configuration
                l1i._policy.on_hit(set_index, way)
            l1i._hits.value += 1
            latency = l1i.config.hit_latency_cycles
        if self.config.icache_prefetch:
            next_line = line + 1
            if (next_line >> l1i._set_shift) in \
                    l1i._tags[next_line & l1i._set_mask]:
                self._i_prefetch_hits.value += 1
            else:
                self._i_prefetches.value += 1
                self._fill_all(next_line << l1i._line_shift, l1i)
        return latency

    # -- shared machinery -------------------------------------------------------

    def _access(self, address: int, l1: SetAssociativeCache) -> int:
        if l1.lookup(address):
            return l1.config.hit_latency_cycles
        return self._miss_latency(address, l1)

    def _miss_latency(self, address: int, l1: SetAssociativeCache) -> int:
        """Latency and fills below a missing L1 (L1 miss already counted)."""
        latency = l1.config.hit_latency_cycles
        if self.l2.lookup(address):
            latency += self.l2.config.hit_latency_cycles
            l1.fill(address)
            return latency
        latency += self.l2.config.hit_latency_cycles
        if self.l3.lookup(address):
            latency += self.l3.config.hit_latency_cycles
            self.l2.fill(address)
            l1.fill(address)
            return latency
        latency += self.l3.config.hit_latency_cycles + \
            self.config.dram_latency_cycles
        self._fill_all(address, l1)
        return latency

    def _fill_all(self, address: int, l1: SetAssociativeCache) -> None:
        self.l3.fill(address)
        self.l2.fill(address)
        l1.fill(address)

    def invalidate_instruction_line(self, address: int) -> None:
        """SMC-style I-side invalidation (L1-I only; L2/L3 are unified)."""
        self.l1i.invalidate(address)
