"""Conventional cache structures: replacement, set-associative tags, hierarchy."""

from .hierarchy import MemoryHierarchy
from .replacement import (
    ReplacementPolicy,
    Srrip,
    TreePlru,
    TrueLru,
    make_policy,
)
from .setassoc import SetAssociativeCache

__all__ = [
    "MemoryHierarchy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "Srrip",
    "TreePlru",
    "TrueLru",
    "make_policy",
]
