"""The micro-operation cache: lookup, fill, compaction, invalidation.

Structure (Table I): ``num_sets x associativity`` physical lines of 64 bytes,
true-LRU replacement maintained **per line** (shared by all entries compacted
into the line — Section V-B's fill-latency argument), indexed by the starting
physical address of the prediction window, byte-addressable tags (the full
start address is the tag, so entries starting at different bytes of the same
I-cache line coexist in one set).

Fill policies (Section V-B):

- ``NONE``  — baseline: every fill allocates a victim line (one entry/line).
- ``RAC``   — try to compact into the most-recently-used line of the set that
  has room; otherwise allocate.
- ``PWAC``  — first try a line already holding an entry of the same PW; then
  RAC; then allocate.
- ``F_PWAC`` — like PWAC, but when the same-PW buddy sits in a line without
  room because it was compacted with foreign entries, *force* the merge:
  evict the LRU line, move the foreign entries there, and compact the same-PW
  entries together (Fig. 14).

CLASP (Section V-A) affects this module only through invalidation: entries
may span two consecutive I-cache lines, so an invalidating probe for line
``L`` must also search the set of line ``L - line_bytes``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.config import CompactionPolicy, UopCacheConfig
from ..common.errors import CacheError
from ..common.statistics import StatGroup
from ..caches.replacement import TrueLru
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub
from .entry import EntryTermination, UopCacheEntry


class FillKind(enum.Enum):
    ALLOC = "alloc"          # placed alone in a (possibly evicted) line
    RAC = "rac"
    PWAC = "pwac"
    F_PWAC = "f-pwac"
    DUPLICATE = "duplicate"  # entry with this start address already resident


@dataclass
class FillResult:
    kind: FillKind
    evicted: List[UopCacheEntry] = field(default_factory=list)


class UopCacheLine:
    """One physical line: an ordered list of compacted entries."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[UopCacheEntry] = []

    @property
    def valid(self) -> bool:
        return bool(self.entries)

    def used_bytes(self, config: UopCacheConfig) -> int:
        return sum(entry.size_bytes(config) for entry in self.entries)

    def free_bytes(self, config: UopCacheConfig) -> int:
        return config.usable_line_bytes - self.used_bytes(config)


class UopCache:
    """The uop cache proper.  See module docstring for the model."""

    def __init__(self, config: Optional[UopCacheConfig] = None,
                 icache_line_bytes: int = 64,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.config = config or UopCacheConfig()
        self.icache_line_bytes = icache_line_bytes
        #: Telemetry hub, or None (the zero-overhead disabled state).
        self._telemetry = telemetry
        cfg = self.config
        self._sets: List[List[UopCacheLine]] = [
            [UopCacheLine() for _ in range(cfg.associativity)]
            for _ in range(cfg.num_sets)]
        self._lru = TrueLru(cfg.num_sets, cfg.associativity)
        # Per-set lookup index: entry start pc -> way.
        self._index: List[Dict[int, int]] = [{} for _ in range(cfg.num_sets)]

        self.stats = StatGroup("uopcache")
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._duplicate_fills = self.stats.counter("duplicate_fills")
        self._compacted_fills = self.stats.counter("compacted_fills")
        self._evicted_entries = self.stats.counter("evicted_entries")
        self._invalidated_entries = self.stats.counter("invalidated_entries")
        self._uops_delivered = self.stats.counter("uops_delivered")
        self._fill_kind_counts: Dict[FillKind, int] = {k: 0 for k in FillKind}
        self._entry_size_hist = self.stats.histogram("entry_size_bytes")
        self._entry_uops_hist = self.stats.histogram("entry_uops")
        self._termination_counts: Dict[EntryTermination, int] = {
            reason: 0 for reason in EntryTermination}
        self._spanning_fills = self.stats.counter("entries_spanning_lines")

    def attach_telemetry(self, telemetry: Optional[TelemetryHub]) -> None:
        """Attach (or detach, with None) a telemetry hub after construction."""
        self._telemetry = telemetry

    # -- indexing ---------------------------------------------------------

    def set_index(self, pc: int) -> int:
        return (pc // self.icache_line_bytes) % self.config.num_sets

    # -- lookup ------------------------------------------------------------

    def lookup(self, pc: int) -> Optional[UopCacheEntry]:
        """Probe with a PW (or continuation) start address."""
        set_index = self.set_index(pc)
        way = self._index[set_index].get(pc)
        if way is None:
            self._misses.increment()
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.OC_MISS, pc=pc)
            return None
        line = self._sets[set_index][way]
        for entry in line.entries:
            if entry.start_pc == pc:
                self._lru.on_hit(set_index, way)
                self._hits.increment()
                self._uops_delivered.increment(entry.num_uops)
                if self._telemetry is not None:
                    self._telemetry.emit(EventKind.OC_HIT, pc=pc,
                                         uops=entry.num_uops)
                return entry
        raise CacheError(f"index desync at pc {pc:#x}")  # pragma: no cover

    def lookup_fast(self, pc: int) -> Optional[UopCacheEntry]:
        """Counters-only :meth:`lookup`: identical architectural effects
        (hit/miss counters, uops-delivered, LRU promotion) without the
        telemetry branches or counter-method dispatch.  Only valid when no
        telemetry hub is attached (the fast serve loop's contract)."""
        set_index = (pc // self.icache_line_bytes) % self.config.num_sets
        way = self._index[set_index].get(pc)
        if way is None:
            self._misses.value += 1
            return None
        for entry in self._sets[set_index][way].entries:
            if entry.start_pc == pc:
                # TrueLru.on_hit inlined (self._lru is always TrueLru).
                order = self._lru._order[set_index]
                order.remove(way)
                order.append(way)
                self._hits.value += 1
                self._uops_delivered.value += len(entry.uops)
                return entry
        raise CacheError(f"index desync at pc {pc:#x}")  # pragma: no cover

    def probe(self, pc: int) -> bool:
        """Presence check without stats or replacement update."""
        return pc in self._index[self.set_index(pc)]

    # -- fill ----------------------------------------------------------------

    def fill(self, entry: UopCacheEntry) -> FillResult:
        cfg = self.config
        if entry.size_bytes(cfg) > cfg.usable_line_bytes:
            raise CacheError(
                f"entry at {entry.start_pc:#x} exceeds line capacity")
        if entry.end_pc <= entry.start_pc:
            raise CacheError(
                f"malformed entry: end {entry.end_pc:#x} <= "
                f"start {entry.start_pc:#x}")
        set_index = self.set_index(entry.start_pc)
        if entry.start_pc in self._index[set_index]:
            self._duplicate_fills.increment()
            self._fill_kind_counts[FillKind.DUPLICATE] += 1
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.OC_FILL, pc=entry.start_pc,
                                     fill_kind=FillKind.DUPLICATE.value)
            return FillResult(FillKind.DUPLICATE)

        self._record_fill_stats(entry)
        policy = cfg.compaction

        if policy is not CompactionPolicy.NONE:
            result = self._fill_compacting(set_index, entry, policy)
        else:
            result = self._fill_alloc(set_index, entry)
        self._fills.increment()
        self._fill_kind_counts[result.kind] += 1
        if result.kind in (FillKind.RAC, FillKind.PWAC, FillKind.F_PWAC):
            self._compacted_fills.increment()
        if self._telemetry is not None:
            self._telemetry.emit(
                EventKind.OC_FILL, pc=entry.start_pc,
                fill_kind=result.kind.value,
                termination=entry.termination.value, uops=entry.num_uops,
                bytes=entry.size_bytes(cfg),
                lines=len(entry.icache_lines(self.icache_line_bytes)))
        return result

    def _record_fill_stats(self, entry: UopCacheEntry) -> None:
        self._entry_size_hist.record(entry.size_bytes(self.config))
        self._entry_uops_hist.record(entry.num_uops)
        self._termination_counts[entry.termination] += 1
        if entry.spans_icache_lines(self.icache_line_bytes):
            self._spanning_fills.increment()

    def _fill_alloc(self, set_index: int, entry: UopCacheEntry) -> FillResult:
        lines = self._sets[set_index]
        valid = [line.valid for line in lines]
        way = self._lru.victim(set_index, valid)
        evicted = self._evict_line(set_index, way)
        lines[way].entries.append(entry)
        self._index[set_index][entry.start_pc] = way
        self._lru.on_fill(set_index, way)
        return FillResult(FillKind.ALLOC, evicted)

    def _fill_compacting(self, set_index: int, entry: UopCacheEntry,
                         policy: CompactionPolicy) -> FillResult:
        if policy in (CompactionPolicy.PWAC, CompactionPolicy.F_PWAC):
            way = self._find_same_pw_line(set_index, entry)
            if way is not None:
                if self._line_accepts(set_index, way, entry):
                    self._place(set_index, way, entry)
                    return FillResult(FillKind.PWAC)
                if policy is CompactionPolicy.F_PWAC:
                    forced = self._force_pw_merge(set_index, way, entry)
                    if forced is not None:
                        return forced
        way = self._find_rac_line(set_index, entry)
        if way is not None:
            self._place(set_index, way, entry)
            return FillResult(FillKind.RAC)
        return self._fill_alloc(set_index, entry)

    # -- compaction helpers --------------------------------------------------

    def _line_accepts(self, set_index: int, way: int,
                      entry: UopCacheEntry) -> bool:
        cfg = self.config
        line = self._sets[set_index][way]
        if not line.valid:
            return False
        if len(line.entries) >= cfg.max_entries_per_line:
            return False
        return line.free_bytes(cfg) >= entry.size_bytes(cfg)

    def _place(self, set_index: int, way: int, entry: UopCacheEntry) -> None:
        self._sets[set_index][way].entries.append(entry)
        self._index[set_index][entry.start_pc] = way
        self._lru.on_fill(set_index, way)

    def _find_same_pw_line(self, set_index: int,
                           entry: UopCacheEntry) -> Optional[int]:
        """The way holding an entry of the same PW, if any (MRU-most wins)."""
        for way in reversed(self._lru.recency_order(set_index)):
            line = self._sets[set_index][way]
            if any(resident.pw_id == entry.pw_id for resident in line.entries):
                return way
        return None

    def _find_rac_line(self, set_index: int,
                       entry: UopCacheEntry) -> Optional[int]:
        """Most-recently-used line with room (replacement-aware compaction)."""
        for way in reversed(self._lru.recency_order(set_index)):
            if self._line_accepts(set_index, way, entry):
                return way
        return None

    def _force_pw_merge(self, set_index: int, buddy_way: int,
                        entry: UopCacheEntry) -> Optional[FillResult]:
        """F-PWAC forced merge (Fig. 14).

        The buddy line holds same-PW entries plus foreign ones and lacks room.
        Evict the LRU line, move the foreign entries there, and compact the
        same-PW group with the new entry in the buddy line.  Returns None when
        the forced merge is impossible (the merged group would not fit, or
        there is no second way), leaving state untouched.
        """
        cfg = self.config
        line = self._sets[set_index][buddy_way]
        same_pw = [e for e in line.entries if e.pw_id == entry.pw_id]
        foreign = [e for e in line.entries if e.pw_id != entry.pw_id]
        if not foreign:
            return None  # nothing to displace; plain PWAC simply lacked space
        merged_bytes = sum(e.size_bytes(cfg) for e in same_pw) + \
            entry.size_bytes(cfg)
        if merged_bytes > cfg.usable_line_bytes or \
                len(same_pw) + 1 > cfg.max_entries_per_line:
            return None
        if cfg.associativity < 2:
            return None

        # Choose the LRU victim line, excluding the buddy line itself.
        order = self._lru.recency_order(set_index)
        victim_way = next(way for way in order if way != buddy_way)
        evicted = self._evict_line(set_index, victim_way)

        # Move foreign entries to the victim line (it is now empty).
        victim_line = self._sets[set_index][victim_way]
        for resident in foreign:
            victim_line.entries.append(resident)
            self._index[set_index][resident.start_pc] = victim_way
        # Buddy line keeps only the same-PW group plus the new entry.
        line.entries = list(same_pw)
        line.entries.append(entry)
        self._index[set_index][entry.start_pc] = buddy_way

        self._lru.on_fill(set_index, victim_way)
        self._lru.on_fill(set_index, buddy_way)
        if self._telemetry is not None:
            self._telemetry.emit(
                EventKind.OC_DISSOLVE, pc=entry.start_pc,
                moved=len(foreign),
                moved_uops=sum(resident.num_uops for resident in foreign))
        return FillResult(FillKind.F_PWAC, evicted)

    # -- eviction / invalidation -------------------------------------------------

    def _evict_line(self, set_index: int, way: int) -> List[UopCacheEntry]:
        line = self._sets[set_index][way]
        evicted = line.entries
        for entry in evicted:
            self._index[set_index].pop(entry.start_pc, None)
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.OC_EVICT, pc=entry.start_pc,
                                     uops=entry.num_uops)
        self._evicted_entries.increment(len(evicted))
        line.entries = []
        return evicted

    def invalidate_icache_line(self, line_address: int) -> int:
        """SMC invalidating probe for one I-cache line (Section II-B4).

        Searches the line's own set and, when CLASP is enabled, the previous
        set (CLASP entries starting in line ``L-1`` may span into ``L``).
        Returns the number of entries invalidated.
        """
        line_bytes = self.icache_line_bytes
        line_address = (line_address // line_bytes) * line_bytes
        sets_to_probe = {self.set_index(line_address)}
        if self.config.clasp:
            for back in range(1, self.config.clasp_max_lines):
                sets_to_probe.add(
                    self.set_index(line_address - back * line_bytes))
        removed = 0
        sets = self._sets
        index = self._index
        for set_index in sorted(sets_to_probe):
            for way, line in enumerate(sets[set_index]):
                keep = []
                push = keep.append
                for entry in line.entries:
                    if entry.overlaps_line(line_address, line_bytes):
                        index[set_index].pop(entry.start_pc, None)
                        removed += 1
                    else:
                        push(entry)
                line.entries = keep
        self._invalidated_entries.increment(removed)
        if self._telemetry is not None:
            self._telemetry.emit(EventKind.OC_INVALIDATE, line=line_address,
                                 removed=removed)
        return removed

    def flush(self) -> None:
        sets = self._sets
        index = self._index
        for set_index in range(self.config.num_sets):
            for way in range(self.config.associativity):
                sets[set_index][way].entries = []
            index[set_index].clear()

    # -- observability ------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def fills(self) -> int:
        return self._fills.value

    @property
    def duplicate_fills(self) -> int:
        return self._duplicate_fills.value

    @property
    def evicted_entries(self) -> int:
        return self._evicted_entries.value

    @property
    def invalidated_entries(self) -> int:
        return self._invalidated_entries.value

    @property
    def uops_delivered(self) -> int:
        return self._uops_delivered.value

    @property
    def fill_kind_counts(self) -> Dict[FillKind, int]:
        return dict(self._fill_kind_counts)

    @property
    def termination_counts(self) -> Dict[EntryTermination, int]:
        return dict(self._termination_counts)

    @property
    def entry_size_histogram(self):
        return self._entry_size_hist

    @property
    def entry_uops_histogram(self):
        return self._entry_uops_hist

    @property
    def spanning_fill_fraction(self) -> float:
        return self._spanning_fills.value / self._fills.value \
            if self._fills.value else 0.0

    @property
    def compacted_fill_fraction(self) -> float:
        return self._compacted_fills.value / self._fills.value \
            if self._fills.value else 0.0

    def resident_tags(self) -> List[List[Tuple[int, int, int, int]]]:
        """Per-set sorted ``(start_pc, end_pc, pw_id, num_uops)`` tuples.

        The structural-state view the differential oracle compares against
        its reference model; deliberately excludes way placement and recency
        (those are implementation detail the reference models differently).
        """
        out: List[List[Tuple[int, int, int, int]]] = []
        for ways in self._sets:
            tags = sorted((entry.start_pc, entry.end_pc, entry.pw_id,
                           entry.num_uops)
                          for line in ways for entry in line.entries)
            out.append(tags)
        return out

    def resident_entries(self) -> int:
        return sum(len(line.entries)
                   for ways in self._sets for line in ways)

    def resident_uops(self) -> int:
        return sum(entry.num_uops
                   for ways in self._sets for line in ways
                   for entry in line.entries)

    def compacted_line_fraction(self) -> float:
        """Fraction of *valid* lines currently holding >= 2 entries."""
        valid = compacted = 0
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    valid += 1
                    if len(line.entries) >= 2:
                        compacted += 1
        return compacted / valid if valid else 0.0

    def utilization(self) -> float:
        """Used bytes over total usable bytes across valid lines."""
        cfg = self.config
        usable = cfg.usable_line_bytes
        used = total = 0
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    used += line.used_bytes(cfg)
                    total += usable
        return used / total if total else 0.0

    def check_invariants(self) -> None:
        """Validate internal consistency (used by property tests)."""
        cfg = self.config
        usable = cfg.usable_line_bytes
        max_entries = max(1, cfg.max_entries_per_line
                          if cfg.compaction is not CompactionPolicy.NONE
                          else 1)
        set_index_of = self.set_index
        for set_index, ways in enumerate(self._sets):
            seen: Dict[int, int] = {}
            for way, line in enumerate(ways):
                if line.used_bytes(cfg) > usable:
                    raise CacheError(
                        f"set {set_index} way {way} overflows its line")
                if len(line.entries) > max_entries:
                    raise CacheError(
                        f"set {set_index} way {way} holds too many entries")
                for entry in line.entries:
                    if set_index_of(entry.start_pc) != set_index:
                        raise CacheError(
                            f"entry {entry.start_pc:#x} in wrong set")
                    if entry.start_pc in seen:
                        raise CacheError(
                            f"duplicate tag {entry.start_pc:#x} in set")
                    seen[entry.start_pc] = way
            if seen != self._index[set_index]:
                raise CacheError(f"index desync in set {set_index}")
