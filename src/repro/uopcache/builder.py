"""The accumulation buffer: builds uop cache entries from the decode stream.

On a uop cache miss the IC path decodes x86 instructions; their uops are
accumulated here until an entry terminating condition fires, at which point a
sealed :class:`UopCacheEntry` is handed to the uop cache fill logic
(Section II-B2/II-B3 of the paper).

Sequencing conditions enforced here:

- **I-cache line boundary** — in the baseline an entry only holds
  instructions whose first bytes share one I-cache line.  With CLASP an
  entry may extend across up to ``clasp_max_lines`` *consecutive* lines as
  long as flow is sequential (which it always is inside an accumulation run;
  taken branches end the run).
- **taken branch** — the caller reports each instruction's resolved
  taken/not-taken flag; a taken (or unconditional) transfer seals the entry.

Content conditions (max uops / imm-disp / micro-coded / physical fit) are
delegated to :class:`~repro.uopcache.entry.EntryBuilder`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..common.config import UopCacheConfig
from ..common.errors import CacheError
from ..isa.uop import Uop
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub
from .entry import EntryBuilder, EntryTermination, UopCacheEntry


class AccumulationBuffer:
    """Builds entries for one sequential decode run at a time."""

    def __init__(self, config: UopCacheConfig,
                 icache_line_bytes: int = 64,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.config = config
        self.icache_line_bytes = icache_line_bytes
        self._telemetry = telemetry
        self._builder: Optional[EntryBuilder] = None
        self._first_line = 0        # I-cache line index of the entry's first inst
        self._pw_id = 0
        #: Uops that bypassed the uop cache because a single instruction
        #: exceeded entry limits (served by the micro-code sequencer instead).
        self.bypassed_uops = 0

    @property
    def accumulating(self) -> bool:
        return self._builder is not None and not self._builder.empty

    def begin(self, pw_id: int) -> None:
        """Set the PW identity for entries that start from now on."""
        self._pw_id = pw_id

    def push(self, inst_uops: Sequence[Uop],
             taken: bool) -> List[UopCacheEntry]:
        """Feed one decoded instruction; returns any entries sealed by it.

        ``taken`` is True when this dynamic instance diverted control flow
        (predicted-taken branch or unconditional transfer).
        """
        if not inst_uops:
            raise CacheError("push requires at least one uop")
        sealed: List[UopCacheEntry] = []
        pc = inst_uops[0].pc
        line = pc // self.icache_line_bytes

        if self._builder is not None and not self._builder.empty:
            if pc != self._builder.end_pc:
                # Non-sequential continuation: control flow diverted while the
                # uop supply came from elsewhere (uop cache path / redirect).
                # The partial sequential run is still a valid entry: seal it.
                sealed.append(self._seal(EntryTermination.PW_END))
            elif self._line_boundary_violation(line):
                sealed.append(self._seal(EntryTermination.ICACHE_LINE_BOUNDARY))
            else:
                violation = self._builder.instruction_fits(inst_uops)
                if violation is not None:
                    sealed.append(self._seal(violation))

        if self._builder is None or self._builder.empty:
            self._open(pc, line)

        if self._builder.instruction_fits(inst_uops) is not None:
            # A single instruction that exceeds entry limits even in a fresh
            # entry (a long micro-coded expansion) is not cached: real designs
            # serve such instructions from the micro-code sequencer.
            self._builder = None
            self.bypassed_uops += len(inst_uops)
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.OC_BYPASS, pc=pc,
                                     uops=len(inst_uops))
            return sealed

        self._builder.add_instruction(inst_uops)
        if taken:
            sealed.append(self._seal(EntryTermination.TAKEN_BRANCH))
        return sealed

    def flush(self) -> List[UopCacheEntry]:
        """Seal any partial entry (end of accumulation run)."""
        if self._builder is None or self._builder.empty:
            self._builder = None
            return []
        return [self._seal(EntryTermination.PW_END)]

    def abandon(self) -> None:
        """Drop any partial entry (e.g. pipeline flush on misprediction)."""
        self._builder = None

    # -- internals ----------------------------------------------------------

    def _open(self, pc: int, line: int) -> None:
        self._builder = EntryBuilder(self.config, start_pc=pc, pw_id=self._pw_id)
        self._first_line = line

    def _line_boundary_violation(self, line: int) -> bool:
        if line == self._first_line:
            return False
        if not self.config.clasp:
            return True
        span = line - self._first_line + 1
        return span > self.config.clasp_max_lines or line < self._first_line

    def _seal(self, termination: EntryTermination) -> UopCacheEntry:
        assert self._builder is not None
        entry = self._builder.seal(termination)
        self._builder = None
        return entry
