"""The micro-operation cache: entries, accumulation, structure, compaction."""

from .builder import AccumulationBuffer
from .cache import FillKind, FillResult, UopCache, UopCacheLine
from .entry import EntryBuilder, EntryTermination, UopCacheEntry

__all__ = [
    "AccumulationBuffer",
    "EntryBuilder",
    "EntryTermination",
    "FillKind",
    "FillResult",
    "UopCache",
    "UopCacheEntry",
    "UopCacheLine",
]
