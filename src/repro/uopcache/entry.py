"""Uop cache entries and their construction/termination rules (Section II-B).

An *entry* is the unit of lookup and dispatch: a run of uops from whole,
consecutively fetched instructions, tagged by the starting physical address.
A *line* is the 64-byte physical container; in the baseline a line holds one
entry, with compaction it holds several.

Entry terminating conditions (baseline):

(a) I-cache line boundary crossing (relaxed by CLASP to ``clasp_max_lines``
    sequential lines),
(b) predicted taken branch,
(c) maximum uops per entry,
(d) maximum immediate/displacement fields per entry,
(e) maximum micro-coded instructions per entry,
(f) physical line fit (uop bytes + imm/disp bytes + metadata <= line size).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..common.config import UopCacheConfig
from ..common.errors import CacheError
from ..isa.uop import Uop, uops_storage_bytes

_entry_ids = itertools.count()


class EntryTermination(enum.Enum):
    ICACHE_LINE_BOUNDARY = "icache-line-boundary"
    TAKEN_BRANCH = "taken-branch"
    MAX_UOPS = "max-uops"
    MAX_IMM_DISP = "max-imm-disp"
    MAX_UCODE = "max-ucode"
    LINE_FULL = "line-full"
    PW_END = "pw-end"                # accumulation flushed at end of stream


@dataclass(eq=False)
class UopCacheEntry:
    """An immutable-after-seal group of uops plus its tag metadata.

    Identity semantics (``eq=False``): two structurally equal fills are still
    distinct entries, and entries can live in hash-based containers.
    """

    start_pc: int
    pw_id: int
    uops: Tuple[Uop, ...] = ()
    end_pc: int = 0                       # first byte past the last instruction
    termination: EntryTermination = EntryTermination.PW_END
    entry_id: int = field(default_factory=lambda: next(_entry_ids))

    @property
    def num_uops(self) -> int:
        return len(self.uops)

    @property
    def num_imm_disp(self) -> int:
        return sum(1 for uop in self.uops if uop.has_imm_disp)

    @property
    def num_ucoded_insts(self) -> int:
        return len({uop.pc for uop in self.uops if uop.is_microcoded})

    @property
    def num_instructions(self) -> int:
        return len({uop.pc for uop in self.uops})

    def size_bytes(self, config: UopCacheConfig) -> int:
        """Storage footprint in the line: uop slots plus imm/disp slots."""
        return uops_storage_bytes(self.uops, config.uop_bytes,
                                  config.imm_disp_bytes)

    def icache_lines(self, line_bytes: int = 64) -> Tuple[int, ...]:
        """I-cache line addresses of the instruction *start* bytes covered."""
        lines = sorted({(uop.pc // line_bytes) * line_bytes for uop in self.uops})
        return tuple(lines)

    def spans_icache_lines(self, line_bytes: int = 64) -> bool:
        return len(self.icache_lines(line_bytes)) > 1

    def covers_address(self, address: int) -> bool:
        """Whether any covered instruction's start byte equals ``address``."""
        return any(uop.pc == address for uop in self.uops)

    def overlaps_line(self, line_address: int, line_bytes: int = 64) -> bool:
        """Whether any covered instruction starts in the given I-cache line."""
        line = (line_address // line_bytes) * line_bytes
        return line in self.icache_lines(line_bytes)


class EntryBuilder:
    """Incrementally accumulates one entry; enforces all limits.

    The accumulation-buffer logic (:mod:`repro.uopcache.builder`) drives this:
    ``try_add`` answers whether a whole instruction's uops fit under rules
    (c)-(f); rules (a)/(b) are sequencing rules the caller enforces because
    they depend on control flow, not entry contents.
    """

    def __init__(self, config: UopCacheConfig, start_pc: int, pw_id: int) -> None:
        self.config = config
        self.start_pc = start_pc
        self.pw_id = pw_id
        self._uops: List[Uop] = []
        self._num_imm = 0
        self._ucoded_pcs = set()
        self._bytes = 0
        self._end_pc = start_pc

    @property
    def empty(self) -> bool:
        return not self._uops

    @property
    def num_uops(self) -> int:
        return len(self._uops)

    @property
    def end_pc(self) -> int:
        return self._end_pc

    def instruction_fits(self, inst_uops: Sequence[Uop]) -> Optional[EntryTermination]:
        """None if the whole instruction fits; else the limit it violates."""
        cfg = self.config
        added_imm = sum(1 for uop in inst_uops if uop.has_imm_disp)
        added_bytes = (len(inst_uops) * cfg.uop_bytes +
                       added_imm * cfg.imm_disp_bytes)
        if len(self._uops) + len(inst_uops) > cfg.max_uops_per_entry:
            return EntryTermination.MAX_UOPS
        if self._num_imm + added_imm > cfg.max_imm_disp_per_entry:
            return EntryTermination.MAX_IMM_DISP
        if inst_uops and inst_uops[0].is_microcoded:
            if len(self._ucoded_pcs | {inst_uops[0].pc}) > cfg.max_ucoded_per_entry:
                return EntryTermination.MAX_UCODE
        if self._bytes + added_bytes > cfg.usable_line_bytes:
            return EntryTermination.LINE_FULL
        return None

    def add_instruction(self, inst_uops: Sequence[Uop]) -> None:
        violation = self.instruction_fits(inst_uops)
        if violation is not None:
            raise CacheError(f"instruction does not fit entry: {violation}")
        if not inst_uops:
            raise CacheError("cannot add an instruction with no uops")
        cfg = self.config
        for uop in inst_uops:
            self._uops.append(uop)
            if uop.has_imm_disp:
                self._num_imm += 1
            if uop.is_microcoded:
                self._ucoded_pcs.add(uop.pc)
        self._bytes = (len(self._uops) * cfg.uop_bytes +
                       self._num_imm * cfg.imm_disp_bytes)
        self._end_pc = inst_uops[0].next_sequential_pc

    def seal(self, termination: EntryTermination) -> UopCacheEntry:
        if self.empty:
            raise CacheError("cannot seal an empty uop cache entry")
        return UopCacheEntry(
            start_pc=self.start_pc,
            pw_id=self.pw_id,
            uops=tuple(self._uops),
            end_pc=self._end_pc,
            termination=termination,
        )
