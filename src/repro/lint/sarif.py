"""SARIF 2.1.0 rendering of a lint run.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so ``repro lint --format sarif`` lets CI surface
findings as inline pull-request annotations without any glue code.

The document shape follows the OASIS 2.1.0 specification:

- one ``run`` whose ``tool.driver`` lists every registered rule (id,
  short description, full rationale) so viewers can render rule help;
- one ``result`` per *new* finding with ``ruleId``, ``level``
  (``error``/``warning`` mapped straight from :class:`Severity`), a
  text ``message`` and a ``physicalLocation`` region;
- findings that carry a call-chain trace (the interprocedural A-rules)
  additionally emit a ``codeFlows`` entry — one ``threadFlow`` location
  per chain step — which GitHub renders as an expandable path.

Only *new* (non-baselined) findings become results: the SARIF document
answers "what should block this PR", exactly like the exit code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Type

from .engine import Rule
from .finding import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "simlint"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptor(rule_class: Type[Rule]) -> Dict[str, Any]:
    return {
        "id": rule_class.id,
        "name": rule_class.__name__,
        "shortDescription": {"text": rule_class.title},
        "fullDescription": {"text": rule_class.rationale},
        "defaultConfiguration": {"level": _level(rule_class.severity)},
    }


def _location(finding: Finding) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path},
            "region": {
                "startLine": finding.line,
                # SARIF columns are 1-based; ast columns are 0-based.
                "startColumn": finding.col + 1,
            },
        },
    }


def _code_flow(finding: Finding) -> Dict[str, Any]:
    locations: List[Dict[str, Any]] = []
    for step in finding.chain:
        locations.append({
            "location": {
                **_location(finding),
                "message": {"text": step},
            },
        })
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [_location(finding)],
    }
    if finding.chain:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def render_sarif(findings: Sequence[Finding],
                 rule_classes: Sequence[Type[Rule]]) -> Dict[str, Any]:
    """The complete SARIF document for one lint run, as plain dicts."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri":
                            "https://example.invalid/simlint",
                        "rules": [_rule_descriptor(rule_class)
                                  for rule_class in rule_classes],
                    },
                },
                "results": [_result(finding) for finding in findings],
            },
        ],
    }
