"""Whole-program contract rules (the X family) and their symbol model.

The paper's numbers are only as good as the bookkeeping contracts between
layers: counters incremented deep in the simulator must surface in
:class:`SimulationResult` or ``supply_counters()``; telemetry events must
stay on the declared taxonomy; config reads must name real config fields.
Each of those is a *cross-module* invariant, so these rules are
:class:`ProjectRule` subclasses sharing one :class:`SymbolModel` — built in
a single walk over every module and cached on the engine run's
:class:`ProjectContext` so three rules pay for one analysis.

Rules:

- **X1** — counter bookkeeping: every ``self.<attr> += ...`` in the counter
  packages must be *read* somewhere in the linted tree (a write-only counter
  can never reach a result or comparison surface), and the static keys of
  every ``supply_counters()`` implementation must be covered by every other
  implementation's surface (static keys, dynamic-key prefixes, or an opaque
  ``.update(...)`` that makes a surface unenumerable and therefore exempt).
- **X2** — telemetry taxonomy: ``.emit(...)`` first arguments must be
  declared ``EventKind`` members; every member must be emitted somewhere
  (waivable with ``# simlint: disable=X2`` on its declaration line); the
  ``KIND_CATEGORY`` table must cover the members exactly.
- **X3** — config-field existence: every ``<config-typed expr>.field`` read
  in simulation packages must name a field, property, or method of the
  config dataclass, following annotations through nested config fields.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import Module, ProjectRule, dotted_name, iter_dotted, register
from .finding import Finding
from .rules import SIMULATION_SCOPE

#: Packages whose ``self.<attr> +=`` statements are treated as counters.
COUNTER_SCOPE: Tuple[str, ...] = ("repro/core", "repro/uopcache")

#: Packages whose config reads X3 checks (simulation code plus the layers
#: that consume configs the same way).
CONFIG_READ_SCOPE: Tuple[str, ...] = SIMULATION_SCOPE + (
    "repro/oracle", "repro/telemetry")

_EVENT_ENUM = "EventKind"
_CATEGORY_TABLE = "KIND_CATEGORY"
_SURFACE_METHOD = "supply_counters"


def _in_scope(rel: str, fragments: Tuple[str, ...]) -> bool:
    haystack = f"/{rel}"
    return any(f"/{fragment}/" in haystack or
               haystack.endswith(f"/{fragment}")
               for fragment in fragments)


# -- the symbol model --------------------------------------------------------

@dataclass
class ConfigClassInfo:
    """One ``*Config`` dataclass: its fields and their (config) types."""

    name: str
    module_rel: str
    node: ast.ClassDef
    #: field -> annotation's trailing type name ("UopCacheConfig", "int"...)
    fields: Dict[str, Optional[str]] = field(default_factory=dict)
    #: every legal attribute: fields + properties + methods + class consts.
    members: Set[str] = field(default_factory=set)


@dataclass
class CounterSurface:
    """The comparison surface of one ``supply_counters`` implementation."""

    module_rel: str
    qualname: str
    node: ast.FunctionDef
    static_keys: Dict[str, int] = field(default_factory=dict)  # key -> line
    prefixes: Set[str] = field(default_factory=set)
    #: an opaque ``.update(...)`` makes the surface unenumerable.
    open_surface: bool = False

    def covers(self, key: str) -> bool:
        return key in self.static_keys or \
            any(key.startswith(prefix) for prefix in self.prefixes if prefix)


@dataclass
class EventModel:
    """The declared EventKind taxonomy and its category table."""

    module_rel: str
    members: Dict[str, int] = field(default_factory=dict)   # name -> line
    category_members: Dict[str, int] = field(default_factory=dict)
    category_table_line: int = 1


@dataclass
class EmitSite:
    """One ``<expr>.emit(...)`` call."""

    module_rel: str
    call: ast.Call
    #: the EventKind member name when the first arg is a literal, else None.
    member: Optional[str] = None
    resolvable: bool = False


@dataclass
class CounterIncrement:
    """One ``self.<attr> += ...`` statement."""

    module_rel: str
    attr: str
    node: ast.AST


@dataclass
class SymbolModel:
    """Everything the X rules need, built in one walk per module."""

    config_classes: Dict[str, ConfigClassInfo] = field(default_factory=dict)
    surfaces: List[CounterSurface] = field(default_factory=list)
    events: Optional[EventModel] = None
    emit_sites: List[EmitSite] = field(default_factory=list)
    increments: List[CounterIncrement] = field(default_factory=list)
    #: every attribute name read (Load context) anywhere in the tree.
    attribute_reads: Set[str] = field(default_factory=set)


def _annotation_type(annotation: Optional[ast.AST]) -> Optional[str]:
    """Trailing type name of an annotation; unwraps Optional[...] and
    string annotations.  Returns None when the shape is not a plain name."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        head = dotted_name(annotation.value)
        if head is not None and head.split(".")[-1] == "Optional":
            return _annotation_type(annotation.slice)
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _scan_config_class(node: ast.ClassDef, rel: str) -> ConfigClassInfo:
    info = ConfigClassInfo(name=node.name, module_rel=rel, node=node)
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and \
                isinstance(statement.target, ast.Name):
            info.fields[statement.target.id] = \
                _annotation_type(statement.annotation)
            info.members.add(statement.target.id)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.members.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    info.members.add(target.id)
    return info


def _scan_surface(node: ast.FunctionDef, rel: str,
                  qualname: str) -> CounterSurface:
    surface = CounterSurface(module_rel=rel, qualname=qualname, node=node)
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    surface.static_keys.setdefault(key.value, key.lineno)
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                key = target.slice
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    surface.static_keys.setdefault(key.value, target.lineno)
                elif isinstance(key, ast.JoinedStr):
                    prefix = ""
                    for part in key.values:
                        if isinstance(part, ast.Constant) and \
                                isinstance(part.value, str):
                            prefix = part.value
                        break
                    if prefix:
                        surface.prefixes.add(prefix)
                    else:
                        surface.open_surface = True
                else:
                    surface.open_surface = True
        elif isinstance(child, ast.Call) and \
                isinstance(child.func, ast.Attribute) and \
                child.func.attr == "update":
            surface.open_surface = True
    return surface


def _scan_event_model(node: ast.ClassDef, rel: str) -> EventModel:
    model = EventModel(module_rel=rel)
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    model.members[target.id] = statement.lineno
        elif isinstance(statement, ast.AnnAssign) and \
                isinstance(statement.target, ast.Name) and \
                statement.value is not None:
            model.members[statement.target.id] = statement.lineno
    return model


def _scan_category_table(value: ast.AST, model: EventModel) -> None:
    if not isinstance(value, ast.Dict):
        return
    for key in value.keys:
        if key is None:
            continue
        parts = list(iter_dotted(key))
        if len(parts) >= 2 and parts[-2] == _EVENT_ENUM:
            model.category_members[parts[-1]] = key.lineno


def _event_member_of(node: ast.AST) -> Tuple[Optional[str], bool]:
    """(member name, resolvable): resolvable is False when the expression is
    not a dotted chain through EventKind (a variable, a call, ...)."""
    parts = list(iter_dotted(node))
    if len(parts) >= 2 and parts[-2] == _EVENT_ENUM:
        return parts[-1], True
    return None, False


def build_symbol_model(modules: Sequence[Module]) -> SymbolModel:
    """One walk over every module; everything the X rules consume."""
    model = SymbolModel()
    for module in modules:
        class_stack: List[str] = []

        def scan(node: ast.AST, qual: str, current: Module = module) -> None:
            rel = current.rel
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    if child.name.endswith("Config") and _is_dataclass(child):
                        info = _scan_config_class(child, rel)
                        model.config_classes.setdefault(child.name, info)
                    if child.name == _EVENT_ENUM and model.events is None:
                        model.events = _scan_event_model(child, rel)
                    scan(child, child.name)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    if child.name == _SURFACE_METHOD and \
                            isinstance(child, ast.FunctionDef):
                        qualname = f"{qual}.{child.name}" if qual \
                            else child.name
                        model.surfaces.append(
                            _scan_surface(child, rel, qualname))
                    scan(child, qual)
                else:
                    scan(child, qual)

        scan(module.tree, "")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                model.attribute_reads.add(node.attr)
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, ast.Add) and \
                    isinstance(node.target, ast.Attribute) and \
                    isinstance(node.target.value, ast.Name) and \
                    node.target.value.id == "self":
                model.increments.append(CounterIncrement(
                    module_rel=module.rel, attr=node.target.attr, node=node))
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "emit" and node.args:
                member, resolvable = _event_member_of(node.args[0])
                model.emit_sites.append(EmitSite(
                    module_rel=module.rel, call=node, member=member,
                    resolvable=resolvable))
            elif isinstance(node, ast.Assign) and model.events is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == _CATEGORY_TABLE:
                        _scan_category_table(node.value, model.events)
            elif isinstance(node, ast.AnnAssign) and \
                    model.events is not None and \
                    isinstance(node.target, ast.Name) and \
                    node.target.id == _CATEGORY_TABLE and \
                    node.value is not None:
                _scan_category_table(node.value, model.events)
    return model


class ContractRule(ProjectRule):
    """Base: X rules share the cached symbol model of the engine run."""

    _CACHE_KEY = "contracts:symbol_model"

    def symbol_model(self, modules: Sequence[Module]) -> SymbolModel:
        if self.context is None:
            return build_symbol_model(modules)
        model = self.context.cache.get(self._CACHE_KEY)
        if model is None:
            model = build_symbol_model(self.context.modules)
            self.context.cache[self._CACHE_KEY] = model
        cached: SymbolModel = model
        return cached

    def in_scope(self, rel: str, fragments: Tuple[str, ...]) -> bool:
        if self.context is not None and self.context.ignore_scope:
            return True
        return _in_scope(rel, fragments)


# -- X1: counter bookkeeping -------------------------------------------------

@register
class CounterContractRule(ContractRule):
    """X1: write-only counters and supply_counters() surface parity."""

    id = "X1"
    title = "counter incremented but never surfaced"
    rationale = ("A counter that is incremented but never read can reach "
                 "neither SimulationResult nor a supply_counters() "
                 "comparison surface — the measurement silently vanishes; "
                 "and a key one supply_counters() exposes that its peer "
                 "cannot produce makes the differential oracle compare "
                 "against a hole.")

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        model = self.symbol_model(modules)
        findings: List[Finding] = []

        for increment in model.increments:
            if not self.in_scope(increment.module_rel, COUNTER_SCOPE):
                continue
            if increment.attr not in model.attribute_reads:
                findings.append(Finding(
                    rule=self.id, path=increment.module_rel,
                    line=getattr(increment.node, "lineno", 1),
                    col=getattr(increment.node, "col_offset", 0),
                    severity=self.severity,
                    message=f"counter self.{increment.attr} is incremented "
                            "but never read anywhere in the linted tree; "
                            "surface it in SimulationResult or "
                            "supply_counters(), or delete it"))

        for surface in model.surfaces:
            for peer in model.surfaces:
                if peer is surface or peer.open_surface:
                    continue
                for key, lineno in sorted(surface.static_keys.items()):
                    if not peer.covers(key):
                        findings.append(Finding(
                            rule=self.id, path=surface.module_rel,
                            line=lineno, col=0, severity=self.severity,
                            message=f"counter key {key!r} exposed by "
                                    f"{surface.qualname} is not covered by "
                                    f"{peer.qualname} "
                                    f"({peer.module_rel}); the differential "
                                    "comparison surface has a hole"))
        return findings


# -- X2: telemetry taxonomy --------------------------------------------------

@register
class TelemetryTaxonomyRule(ContractRule):
    """X2: emit sites vs the declared EventKind taxonomy."""

    id = "X2"
    title = "telemetry event off the declared taxonomy"
    rationale = ("Sinks, the replay cross-check, and the category filter "
                 "all dispatch on EventKind; an emit of an undeclared kind "
                 "crashes or silently misfiles, a declared-but-never-"
                 "emitted kind is a taxonomy entry consumers wait on "
                 "forever, and a KIND_CATEGORY gap breaks filtering.")

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        model = self.symbol_model(modules)
        events = model.events
        if events is None:
            return []
        findings: List[Finding] = []

        emitted: Set[str] = set()
        for site in model.emit_sites:
            if site.member is not None:
                emitted.add(site.member)
                if site.member not in events.members:
                    findings.append(Finding(
                        rule=self.id, path=site.module_rel,
                        line=site.call.lineno, col=site.call.col_offset,
                        severity=self.severity,
                        message=f"emit of EventKind.{site.member}: not a "
                                f"declared {_EVENT_ENUM} member "
                                f"({events.module_rel})"))

        for member, lineno in sorted(events.members.items()):
            if member not in emitted:
                findings.append(Finding(
                    rule=self.id, path=events.module_rel, line=lineno, col=4,
                    severity=self.severity,
                    message=f"{_EVENT_ENUM}.{member} is declared but no "
                            "module emits it; emit it or waive it with a "
                            "'# simlint: disable=X2' on the declaration"))
            if events.category_members and \
                    member not in events.category_members:
                findings.append(Finding(
                    rule=self.id, path=events.module_rel, line=lineno, col=4,
                    severity=self.severity,
                    message=f"{_EVENT_ENUM}.{member} has no "
                            f"{_CATEGORY_TABLE} entry; category filtering "
                            "drops its events"))
        for member, lineno in sorted(events.category_members.items()):
            if member not in events.members:
                findings.append(Finding(
                    rule=self.id, path=events.module_rel, line=lineno, col=4,
                    severity=self.severity,
                    message=f"{_CATEGORY_TABLE} references "
                            f"{_EVENT_ENUM}.{member}, which is not a "
                            "declared member"))
        return findings


# -- X3: config-field existence ----------------------------------------------

class _TypeEnv:
    """Name -> config-class map of one scope, flow-insensitively inferred.

    A name assigned two different resolvable types, or one resolvable and
    one opaque value, is *poisoned* and never checked — simlint only
    reports what it can prove.
    """

    def __init__(self, classes: Dict[str, ConfigClassInfo]) -> None:
        self._classes = classes
        self._types: Dict[str, str] = {}
        self._poisoned: Set[str] = set()

    def bind(self, name: str, type_name: Optional[str]) -> None:
        if name in self._poisoned:
            return
        if type_name is None:
            if name in self._types:
                del self._types[name]
                self._poisoned.add(name)
            return
        if self._types.get(name, type_name) != type_name:
            del self._types[name]
            self._poisoned.add(name)
            return
        self._types[name] = type_name

    def lookup(self, name: str) -> Optional[str]:
        return self._types.get(name)

    def resolve(self, node: ast.AST,
                self_attrs: Dict[str, str]) -> Optional[str]:
        """Config class of an expression, or None if unprovable."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None and \
                    callee.split(".")[-1] in self._classes:
                return callee.split(".")[-1]
            return None
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            for operand in node.values:
                resolved = self.resolve(operand, self_attrs)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self_attrs.get(node.attr)
            base = self.resolve(node.value, self_attrs)
            if base is None:
                return None
            info = self._classes.get(base)
            if info is None:
                return None
            field_type = info.fields.get(node.attr)
            if field_type is not None and field_type in self._classes:
                return field_type
            return None
        return None


def _own_statements(func: ast.AST) -> List[ast.AST]:
    """Every node of a scope excluding nested function/class bodies."""
    out: List[ast.AST] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))
    return out


@register
class ConfigFieldRule(ContractRule):
    """X3: reads of nonexistent config dataclass fields."""

    id = "X3"
    title = "read of a nonexistent config field"
    rationale = ("Frozen config dataclasses raise AttributeError on a "
                 "mistyped field only when the branch executes — which for "
                 "rare config combinations means deep into a sweep. "
                 "Resolving annotated config types statically catches the "
                 "typo at lint time.")

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        model = self.symbol_model(modules)
        if not model.config_classes:
            return []
        findings: List[Finding] = []
        for module in modules:
            if not self.in_scope(module.rel, CONFIG_READ_SCOPE):
                continue
            findings.extend(self._check_module(module, model))
        return findings

    def _check_module(self, module: Module,
                      model: SymbolModel) -> List[Finding]:
        findings: List[Finding] = []
        for class_node, functions in self._scopes(module.tree):
            self_attrs = self._self_attr_types(class_node, model) \
                if class_node is not None else {}
            for func in functions:
                findings.extend(self._check_scope(
                    module, func, model, self_attrs))
        return findings

    def _scopes(self, tree: ast.Module) -> List[
            Tuple[Optional[ast.ClassDef], List[ast.AST]]]:
        """(owning class, scopes) pairs: module body, free functions, and
        every method grouped under its class."""
        out: List[Tuple[Optional[ast.ClassDef], List[ast.AST]]] = []
        free: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                methods: List[ast.AST] = [
                    child for child in ast.walk(node)
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]
                out.append((node, methods))
        class_functions = {id(func) for _, funcs in out for func in funcs}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and id(node) not in class_functions:
                free.append(node)
        out.append((None, free))
        return out

    def _self_attr_types(self, class_node: ast.ClassDef,
                         model: SymbolModel) -> Dict[str, str]:
        """``self.<attr>`` -> config class, from class-level annotations and
        ``self.x = <config-typed>`` stores in methods."""
        attrs: Dict[str, str] = {}
        poisoned: Set[str] = set()

        def record(name: str, type_name: Optional[str]) -> None:
            if name in poisoned:
                return
            if type_name is None:
                if name in attrs:
                    del attrs[name]
                poisoned.add(name)
                return
            if attrs.get(name, type_name) != type_name:
                del attrs[name]
                poisoned.add(name)
                return
            attrs[name] = type_name

        for statement in class_node.body:
            if isinstance(statement, ast.AnnAssign) and \
                    isinstance(statement.target, ast.Name):
                annotated = _annotation_type(statement.annotation)
                if annotated in model.config_classes:
                    record(statement.target.id, annotated)

        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            env = self._param_env(method, model)
            for node in sorted(
                    (n for n in _own_statements(method)
                     if isinstance(n, ast.Assign)),
                    key=lambda n: n.lineno):
                value_type = env.resolve(node.value, attrs)
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        record(target.attr, value_type)
        return attrs

    def _param_env(self, func: ast.AST, model: SymbolModel) -> _TypeEnv:
        env = _TypeEnv(model.config_classes)
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in (list(getattr(args, "posonlyargs", [])) + args.args +
                        args.kwonlyargs):
                annotated = _annotation_type(arg.annotation)
                if annotated in model.config_classes:
                    env.bind(arg.arg, annotated)
        return env

    def _check_scope(self, module: Module, func: ast.AST, model: SymbolModel,
                     self_attrs: Dict[str, str]) -> List[Finding]:
        env = self._param_env(func, model)
        own = _own_statements(func)
        for node in sorted((n for n in own
                            if isinstance(n, (ast.Assign, ast.AnnAssign))),
                           key=lambda n: n.lineno):
            if isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    annotated = _annotation_type(node.annotation)
                    if annotated in model.config_classes:
                        env.bind(node.target.id, annotated)
                continue
            value_type = env.resolve(node.value, self_attrs)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env.bind(target.id, value_type)

        findings: List[Finding] = []
        for node in own:
            if not (isinstance(node, ast.Attribute) and
                    isinstance(node.ctx, ast.Load)):
                continue
            base_type = env.resolve(node.value, self_attrs)
            if base_type is None:
                continue
            info = model.config_classes.get(base_type)
            if info is None or node.attr.startswith("__"):
                continue
            if node.attr not in info.members:
                findings.append(Finding(
                    rule=self.id, path=module.rel, line=node.lineno,
                    col=node.col_offset, severity=self.severity,
                    message=f"read of .{node.attr} on a {base_type} "
                            f"value: {base_type} "
                            f"({info.module_rel}) has no such field, "
                            "property, or method"))
        return findings
