"""CLI front-end for simlint: ``python -m repro lint [paths]``.

Exit codes (CI contract):

- 0 — no findings beyond the baseline,
- 1 — new findings (or stale baseline entries under ``--strict-baseline``),
- 2 — the linter itself failed (bad path, unreadable baseline, ...).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set, TextIO

from .baseline import (
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from .cache import (
    DEFAULT_CACHE,
    CacheStats,
    IncrementalCache,
    dependency_closure,
    engine_fingerprint,
)
from .engine import LintEngine, LintError, LintReport, all_rules, rule_catalog
from .sarif import render_sarif

#: Default committed baseline, resolved relative to the working directory
#: (CI and developers both run from the repository root).
DEFAULT_BASELINE = ".simlint-baseline.json"

#: Version of the ``--format json`` payload.  1 was the original (implicit,
#: unversioned) shape; 2 added this field and fixed finding ordering to
#: (path, line, rule) so payloads diff cleanly across runs; 3 added the
#: optional per-finding ``chain`` call-trace emitted by the A-rules.
JSON_SCHEMA_VERSION = 3


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options to the ``repro lint`` subparser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of acknowledged findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="acknowledge all current findings in the "
                             "baseline file and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate the baseline in place: prune "
                             "stale entries and lower counts, without "
                             "acknowledging anything new; exits 0")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="also fail when baseline entries are stale "
                             "(fixed findings that should be pruned)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    parser.add_argument("--ignore-scope", action="store_true",
                        help="apply path-scoped rules to every file "
                             "(used by the fixture tests)")
    parser.add_argument("--cache", nargs="?", const=DEFAULT_CACHE,
                        default=None, metavar="PATH",
                        help="incremental analysis cache: re-analyze only "
                             "files whose content (or whose call-graph/"
                             "import neighbours' content) changed since "
                             f"the last run (default path: {DEFAULT_CACHE})")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files git reports as changed "
                             "(plus their coupled files when a --cache is "
                             "present); a fast pre-commit mode — project "
                             "rules see the reduced universe")


def _list_rules(stream: TextIO) -> int:
    for rule_class in rule_catalog():
        scope = ", ".join(rule_class.scope) if rule_class.scope else "all files"
        stream.write(f"{rule_class.id}  {rule_class.title}\n")
        stream.write(f"    severity: {rule_class.severity.value}; "
                     f"scope: {scope}\n")
        stream.write(f"    {rule_class.rationale}\n\n")
    return 0


def run_lint(args: argparse.Namespace,
             stream: Optional[TextIO] = None) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    out: TextIO = stream if stream is not None else sys.stdout
    if args.list_rules:
        return _list_rules(out)

    root = Path.cwd()
    engine = LintEngine(root=root, rules=all_rules(),
                        ignore_scope=args.ignore_scope)
    baseline_path = Path(args.baseline)
    cache: Optional[IncrementalCache] = None
    if args.cache:
        cache = IncrementalCache.load(Path(args.cache), root,
                                      engine_fingerprint(engine))
    stats: Optional[CacheStats] = None
    try:
        paths = [Path(p) for p in args.paths]
        if args.changed_only:
            paths = _changed_paths(root, paths, cache)
        if args.changed_only and not paths:
            report = LintReport()
        elif cache is not None:
            report, stats = cache.run(engine, paths)
        else:
            report = engine.run(paths)
        if args.write_baseline:
            write_baseline(baseline_path, report.findings)
            out.write(f"simlint: wrote {len(report.findings)} finding(s) "
                      f"to {baseline_path}\n")
            return 0
        if args.update_baseline:
            updated = update_baseline(baseline_path, report.findings)
            out.write(f"simlint: baseline {baseline_path} regenerated "
                      f"({sum(updated.values())} acknowledged occurrence(s) "
                      f"across {len(updated)} fingerprint(s))\n")
            return 0
        baseline = {} if args.no_baseline else load_baseline(baseline_path)
    except LintError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return 2

    split = apply_baseline(report.findings, baseline)
    failed = bool(split.new) or (args.strict_baseline and bool(split.stale))

    if args.format == "sarif":
        out.write(json.dumps(render_sarif(split.new, rule_catalog()),
                             indent=2) + "\n")
        return 1 if failed else 0

    if args.format == "json":
        out.write(json.dumps({
            "schema_version": JSON_SCHEMA_VERSION,
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "baselined": len(split.baselined),
            "stale_baseline": split.stale,
            "findings": [finding.to_dict() for finding in split.new],
        }, indent=2) + "\n")
        return 1 if failed else 0

    for finding in split.new:
        out.write(finding.render() + "\n")
    for fingerprint in split.stale:
        out.write(f"stale baseline entry (fixed? prune it): {fingerprint}\n")
    if stats is not None:
        out.write(f"simlint: cache: {stats.describe()}\n")
    out.write(f"simlint: {report.files_checked} file(s), "
              f"{len(split.new)} finding(s), "
              f"{len(split.baselined)} baselined, "
              f"{report.suppressed} suppressed\n")
    return 1 if failed else 0


def _git_changed_files(root: Path) -> Set[str]:
    """Paths (repo-relative) git considers modified or untracked."""
    changed: Set[str] = set()
    for command in (["git", "diff", "--name-only", "HEAD"],
                    ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            result = subprocess.run(command, cwd=root, capture_output=True,
                                    text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as error:
            raise LintError(
                "--changed-only requires a git checkout "
                f"({' '.join(command)} failed)") from error
        changed.update(line.strip() for line in result.stdout.splitlines()
                       if line.strip())
    return changed


def _changed_paths(root: Path, requested: List[Path],
                   cache: Optional[IncrementalCache]) -> List[Path]:
    """Changed .py files under the requested paths, expanded through the
    cached coupling edges when a cache is available."""
    bases = [(path if path.is_absolute() else root / path).resolve()
             for path in requested]

    def under_requested(rel: str) -> bool:
        path = (root / rel).resolve()
        return any(path == base or base in path.parents for base in bases)

    changed = {rel for rel in _git_changed_files(root)
               if rel.endswith(".py") and (root / rel).exists()
               and under_requested(rel)}
    if cache is not None and cache.files:
        calls, imports = cache._adjacency()
        expanded = dependency_closure(set(changed), calls, imports)
        changed.update(rel for rel in expanded
                       if rel.endswith(".py") and (root / rel).exists()
                       and under_requested(rel))
    return [root / rel for rel in sorted(changed)]


def make_parser() -> argparse.ArgumentParser:
    """Standalone parser (``python -m repro.lint.cli``, used by tooling)."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based determinism & simulator-correctness linter")
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
