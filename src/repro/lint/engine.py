"""The simlint rule engine: module loading, visitor dispatch, suppressions.

Design
------

The engine parses every target file once into a :class:`Module` (source +
AST + suppression table) and hands modules to rules:

- :class:`VisitorRule` — a per-file rule implemented as an
  :class:`ast.NodeVisitor`; the standard ``visit_<NodeType>`` dispatch is
  the rule's pattern-matching mechanism.  Most rules are of this kind.
- :class:`ProjectRule` — a whole-program rule that sees every parsed module
  at once (e.g. the metrics cross-check, which correlates counter
  *registrations* in one file with counter *increments* in all others).

Suppression follows the established lint idiom: a trailing
``# simlint: disable=RULE[,RULE...]`` comment silences matching findings on
that physical line, ``# simlint: disable-next-line=RULE`` (on its own line)
silences them on the following line, ``# simlint: disable`` /
``disable-next-line`` without rules silences every rule, and
``# simlint: disable-file=RULE`` anywhere in a file silences the rule for
the whole file.  Suppressions are honoured *after* rules run so the engine
can still count them.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..common.errors import ReproError
from .finding import Finding, Severity


class LintError(ReproError):
    """The linter itself was misused (bad path, unreadable file, ...)."""


_SUPPRESS_RE = re.compile(
    r"#\s*simlint\s*:\s*(disable-next-line|disable-file|disable)"
    r"\s*(?:=\s*([A-Za-z0-9_,\s]+))?")

#: Wildcard rule id meaning "every rule" in suppression tables.
_ALL = "*"


def _parse_suppressions(
        source: str) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """Extract per-line and file-level suppressions from source comments."""
    per_line: Dict[int, FrozenSet[str]] = {}
    file_level: List[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        kind, raw_rules = match.group(1), match.group(2)
        rules = (frozenset(r.strip() for r in raw_rules.split(",") if r.strip())
                 if raw_rules else frozenset((_ALL,)))
        if kind == "disable-file":
            file_level.extend(rules)
        else:
            target = lineno + 1 if kind == "disable-next-line" else lineno
            per_line[target] = per_line.get(target, frozenset()) | rules
    return per_line, frozenset(file_level)


@dataclass
class Module:
    """One parsed target file plus its suppression table."""

    path: Path                      # absolute
    rel: str                        # posix-style, relative to the lint root
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_suppressions: FrozenSet[str] = frozenset()
    #: Scratch space rules share within one engine run (e.g. the flow rules
    #: cache per-function CFGs here so F1-F4 build them once, not four times).
    analysis_cache: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "Module":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        tree = ast.parse(source, filename=str(path))
        per_line, file_level = _parse_suppressions(source)
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path=path, rel=rel, source=source, tree=tree,
                   line_suppressions=per_line, file_suppressions=file_level)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if _ALL in self.file_suppressions or rule in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line)
        return rules is not None and (_ALL in rules or rule in rules)


class Rule(abc.ABC):
    """Base class for all simlint rules.

    Subclasses set the class attributes below; ``scope`` restricts a rule to
    files whose relative path contains one of the given package fragments
    (e.g. ``("repro/core",)``), because some invariants only matter in
    simulation code.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: Module) -> bool:
        if self.scope is None:
            return True
        haystack = f"/{module.rel}"
        return any(f"/{fragment}/" in haystack or haystack.endswith(f"/{fragment}")
                   for fragment in self.scope)


class VisitorRule(Rule, ast.NodeVisitor):
    """A per-file rule driven by :class:`ast.NodeVisitor` dispatch.

    Subclasses implement ``visit_<NodeType>`` methods and call
    :meth:`report`; :meth:`begin` runs before the walk for per-module setup
    (import maps, assignment tracking) and :meth:`finish` after it.
    """

    def __init__(self) -> None:
        self._module: Optional[Module] = None
        self._findings: List[Finding] = []

    @property
    def module(self) -> Module:
        assert self._module is not None, "rule used outside check()"
        return self._module

    def begin(self, module: Module) -> None:
        """Per-module setup hook (default: nothing)."""

    def finish(self, module: Module) -> None:
        """Per-module teardown hook (default: nothing)."""

    def report(self, node: ast.AST, message: str,
               severity: Optional[Severity] = None) -> None:
        self._findings.append(Finding(
            rule=self.id, path=self.module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message, severity=severity or self.severity))

    def check(self, module: Module) -> List[Finding]:
        self._module = module
        self._findings = []
        try:
            self.begin(module)
            self.visit(module.tree)
            self.finish(module)
        finally:
            self._module = None
        return self._findings


@dataclass
class ProjectContext:
    """Shared state of one engine run, handed to every project rule.

    ``cache`` lets expensive whole-program artifacts (the contract rules'
    symbol model) be built once and reused by every rule in the run;
    ``ignore_scope`` mirrors the engine flag so rules that filter paths
    *internally* (beyond the registry-level ``scope``) can honour it too.
    """

    modules: Sequence[Module]
    ignore_scope: bool = False
    cache: Dict[str, Any] = field(default_factory=dict)


class ProjectRule(Rule):
    """A rule that needs to see every module at once.

    The engine sets :attr:`context` before calling :meth:`check_project`;
    rules can pull shared artifacts out of ``context.cache``.
    """

    context: Optional[ProjectContext] = None

    @abc.abstractmethod
    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        ...


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise LintError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_catalog() -> List[Type[Rule]]:
    """The registered rule classes, ordered by id (for ``--list-rules``)."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# -- engine ------------------------------------------------------------------

@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: int = 0
    #: Suppression counts broken down by file (the incremental cache stores
    #: these per entry so a replayed run reports the same totals).
    suppressed_by_file: Dict[str, int] = field(default_factory=dict)


class LintEngine:
    """Collects files, runs rules, applies suppressions.

    ``ignore_scope`` disables per-rule path scoping; the fixture tests use
    it to exercise scoped rules on files outside ``src/repro``.
    """

    def __init__(self, root: Path, rules: Optional[Sequence[Rule]] = None,
                 ignore_scope: bool = False) -> None:
        self.root = root
        self.rules: List[Rule] = list(rules) if rules is not None \
            else all_rules()
        self.ignore_scope = ignore_scope
        #: Context of the most recent :meth:`run` — the incremental cache
        #: reads the shared call graph out of it to refresh file deps.
        self.last_context: Optional[ProjectContext] = None

    def collect_files(self, paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(p for p in sorted(path.rglob("*.py"))
                             if not any(part.startswith(".")
                                        for part in p.parts))
            elif path.is_file():
                files.append(path)
            else:
                raise LintError(f"no such file or directory: {path}")
        # De-duplicate while preserving order.
        seen: Dict[Path, None] = {}
        for file_path in files:
            seen.setdefault(file_path.resolve(), None)
        return list(seen)

    def load_modules(self, paths: Sequence[Path]
                     ) -> Tuple[List[Module], List[Finding]]:
        modules: List[Module] = []
        parse_failures: List[Finding] = []
        for file_path in self.collect_files(paths):
            try:
                modules.append(Module.load(file_path, self.root))
            except SyntaxError as error:
                try:
                    rel = file_path.resolve().relative_to(
                        self.root.resolve()).as_posix()
                except ValueError:
                    rel = file_path.as_posix()
                parse_failures.append(Finding(
                    rule="E000", path=rel, line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"syntax error: {error.msg}",
                    severity=Severity.ERROR))
        return modules, parse_failures

    def _applies(self, rule: Rule, module: Module) -> bool:
        return self.ignore_scope or rule.applies_to(module)

    def run(self, paths: Sequence[Path],
            restrict: Optional[FrozenSet[str]] = None) -> LintReport:
        """Lint ``paths``; with ``restrict``, report only those rels.

        ``restrict`` is the incremental mode: every file is still parsed
        (project rules need the whole program to resolve calls), but
        per-file rules run only on the restricted modules and project-rule
        findings outside the restriction are dropped — the caller replays
        them from its cache.
        """
        modules, parse_failures = self.load_modules(paths)
        report = LintReport(files_checked=len(modules) + len(parse_failures),
                            parse_errors=len(parse_failures))
        raw: List[Finding] = list(parse_failures)
        by_rel: Dict[str, Module] = {m.rel: m for m in modules}
        context = ProjectContext(modules=modules,
                                 ignore_scope=self.ignore_scope)
        self.last_context = context

        def targeted(module: Module) -> bool:
            return restrict is None or module.rel in restrict

        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                scoped = [m for m in modules if self._applies(rule, m)]
                rule.context = context
                raw.extend(rule.check_project(scoped))
            elif isinstance(rule, VisitorRule):
                for module in modules:
                    if targeted(module) and self._applies(rule, module):
                        raw.extend(rule.check(module))
            else:   # pragma: no cover - registry enforces the two kinds
                raise LintError(f"rule {rule.id} is neither visitor nor project")

        for finding in raw:
            if restrict is not None and finding.path not in restrict:
                continue
            module = by_rel.get(finding.path)
            if module is not None and module.is_suppressed(finding.rule,
                                                           finding.line):
                report.suppressed += 1
                report.suppressed_by_file[finding.path] = \
                    report.suppressed_by_file.get(finding.path, 0) + 1
            else:
                report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        return report


def iter_dotted(node: ast.AST) -> Iterator[str]:
    """Yield attribute-chain segments of ``a.b.c`` outermost-last; empty if
    the expression is not a pure name/attribute chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        yield from reversed(parts)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure name/attribute chain, else ``None``."""
    parts = list(iter_dotted(node))
    return ".".join(parts) if parts else None


class ImportMap:
    """Resolves local names to canonical dotted module paths.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from random import
    randint`` maps ``randint`` -> ``random.randint``.  :meth:`canonical`
    rewrites a call target like ``np.random.rand`` to ``numpy.random.rand``
    so rules can match on stable, alias-free names.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}
        self.member_aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.member_aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> Optional[str]:
        parts = list(iter_dotted(node))
        if not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.module_aliases:
            return ".".join([self.module_aliases[head]] + rest)
        if head in self.member_aliases:
            return ".".join([self.member_aliases[head]] + rest)
        return None


def is_builtin_call(node: ast.Call, names: Iterable[str],
                    imports: Optional[ImportMap] = None) -> bool:
    """True when ``node`` calls one of the given builtins by bare name.

    A bare name shadowed by an import (``from numpy import sum``) does not
    count when an :class:`ImportMap` is supplied.
    """
    if not isinstance(node.func, ast.Name):
        return False
    if imports is not None and (node.func.id in imports.module_aliases or
                                node.func.id in imports.member_aliases):
        return False
    return node.func.id in set(names)
