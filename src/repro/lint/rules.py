"""The simlint rule set: determinism (D*) and correctness (C*) rules.

Each rule encodes one invariant the simulator's reproducibility story
depends on (see DESIGN.md §9).  The determinism rules exist because the
sweep runner promises bit-identical aggregate tables across serial,
parallel, and resumed executions — a promise that a single unseeded RNG
call, wall-clock read, or hash-ordered set iteration silently breaks.
The correctness rules catch the patterns that have historically produced
quietly-wrong simulator statistics: dead counters, post-validation config
mutation, shared mutable defaults, and swallowed simulation errors.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import (
    ImportMap,
    Module,
    ProjectRule,
    VisitorRule,
    dotted_name,
    is_builtin_call,
    register,
)
from .finding import Finding, Severity

#: Packages whose code runs *inside* a simulation (set-iteration order there
#: changes simulated event order, not just output formatting).
SIMULATION_SCOPE: Tuple[str, ...] = (
    "repro/core", "repro/uopcache", "repro/frontend",
    "repro/branch", "repro/caches",
)


class SetTracker:
    """Tracks names (including ``self.x`` attributes) bound to sets.

    Purely name-based: a name ever assigned a set literal, ``set(...)`` /
    ``frozenset(...)`` call, or set comprehension is considered set-typed
    for the whole module.  That is deliberately conservative in both
    directions — simlint prefers explainable findings over type inference.
    """

    def __init__(self, tree: ast.Module, imports: ImportMap) -> None:
        self._imports = imports
        self.names: Set[str] = set()
        for node in ast.walk(tree):
            value: Optional[ast.AST] = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not self._is_set_literal(value):
                continue
            for target in targets:
                name = dotted_name(target)
                if name:
                    self.names.add(name)

    def _is_set_literal(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return is_builtin_call(node, ("set", "frozenset"), self._imports)
        return False

    def is_setish(self, node: ast.AST) -> bool:
        if self._is_set_literal(node):
            return True
        name = dotted_name(node)
        return name is not None and name in self.names


#: Builtins that consume an iterable in an order-insensitive way.
_ORDER_INSENSITIVE_CONSUMERS = ("sorted", "min", "max", "len", "sum",
                                "any", "all", "set", "frozenset")


@register
class UnseededRandomRule(VisitorRule):
    """D1: module-level ``random.*`` / ``numpy.random.*`` calls."""

    id = "D1"
    title = "unseeded module-level RNG call"
    rationale = ("Module-level RNG state is shared, unseeded by default, and "
                 "invisible to the sweep runner's --seed plumbing; every "
                 "random draw must come from an explicitly seeded "
                 "random.Random or numpy Generator instance.")

    _ALLOWED_RANDOM = ("random.Random",)
    _NUMPY_SEEDED_FACTORIES = ("numpy.random.default_rng",
                               "numpy.random.Generator",
                               "numpy.random.RandomState",
                               "numpy.random.SeedSequence")

    def begin(self, module: Module) -> None:
        self._imports = ImportMap(module.tree)

    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._imports.canonical(node.func)
        if canonical is not None:
            if canonical.startswith("random.") and \
                    canonical not in self._ALLOWED_RANDOM:
                self.report(node, f"call to {canonical}() uses the shared "
                                  "module-level RNG; draw from a seeded "
                                  "random.Random instance instead")
            elif canonical in self._NUMPY_SEEDED_FACTORIES:
                if not node.args and not node.keywords:
                    self.report(node, f"{canonical}() constructed without a "
                                      "seed; pass an explicit seed")
            elif canonical.startswith("numpy.random."):
                self.report(node, f"call to {canonical}() uses numpy's "
                                  "global RNG state; use a seeded "
                                  "numpy.random.default_rng(seed) generator")
        self.generic_visit(node)


@register
class SetIterationRule(VisitorRule):
    """D2: iteration over sets in simulation packages."""

    id = "D2"
    title = "hash-ordered set iteration in simulation code"
    rationale = ("Set iteration order depends on insertion history and, for "
                 "str keys, on the per-process hash seed; iterating one in "
                 "a simulation hot path reorders simulated events between "
                 "runs.  Iterate sorted(...) or an ordered container.")
    scope = SIMULATION_SCOPE

    def begin(self, module: Module) -> None:
        self._imports = ImportMap(module.tree)
        self._sets = SetTracker(module.tree, self._imports)
        self._exempt: Set[int] = set()

    def _flag(self, node: ast.AST, source: ast.AST, context: str) -> None:
        if id(node) in self._exempt:
            return
        label = dotted_name(source) or "a set expression"
        self.report(node, f"{context} iterates {label!r} in set order; "
                          "wrap it in sorted(...) to fix the event order")

    def visit_Call(self, node: ast.Call) -> None:
        if is_builtin_call(node, _ORDER_INSENSITIVE_CONSUMERS, self._imports):
            for arg in node.args:
                self._exempt.add(id(arg))
        elif is_builtin_call(node, ("list", "tuple"), self._imports) and \
                len(node.args) == 1 and id(node) not in self._exempt and \
                self._sets.is_setish(node.args[0]):
            self._flag(node, node.args[0], "list/tuple conversion")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._sets.is_setish(node.iter):
            self._flag(node, node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension],
                             context: str) -> None:
        if id(node) not in self._exempt:
            for generator in generators:
                if self._sets.is_setish(generator.iter):
                    self._flag(node, generator.iter, context)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators, "generator expression")


@register
class WallClockRule(VisitorRule):
    """D3: wall-clock / OS-entropy reads in simulation code."""

    id = "D3"
    title = "wall-clock or OS-entropy dependence"
    rationale = ("time.time/datetime.now/os.urandom make a run depend on "
                 "when and where it executed; simulated time must come from "
                 "the simulator's own cycle counters.  time.monotonic and "
                 "time.perf_counter stay allowed for runner timeouts because "
                 "they never feed simulation state.")

    _BANNED = {
        "time.time": "simulated time must come from cycle counters",
        "time.time_ns": "simulated time must come from cycle counters",
        "datetime.datetime.now": "wall-clock timestamps are not reproducible",
        "datetime.datetime.utcnow": "wall-clock timestamps are not reproducible",
        "datetime.datetime.today": "wall-clock timestamps are not reproducible",
        "datetime.date.today": "wall-clock timestamps are not reproducible",
        "os.urandom": "OS entropy is unseedable",
        "uuid.uuid1": "uuid1 mixes in clock and host state",
        "uuid.uuid4": "uuid4 draws OS entropy",
    }

    def begin(self, module: Module) -> None:
        self._imports = ImportMap(module.tree)

    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._imports.canonical(node.func)
        if canonical in self._BANNED:
            self.report(node, f"call to {canonical}(): "
                              f"{self._BANNED[canonical]}")
        self.generic_visit(node)


@register
class MetricsRegistrationRule(ProjectRule):
    """C1: SimulationResult counters must be written, and writes registered."""

    id = "C1"
    title = "metrics registration/increment cross-check"
    rationale = ("A counter field declared on SimulationResult but never "
                 "assigned anywhere reports a silent 0 forever; a store to "
                 "a result attribute that is not a declared field is a typo "
                 "that drops the measurement on the floor.")

    _RESULT_CLASS = "SimulationResult"
    #: Variable names treated as SimulationResult instances for the
    #: unknown-attribute direction of the check.
    _RESULT_NAMES = ("result",)

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        declaration = self._find_declaration(modules)
        if declaration is None:
            return []
        defining, class_node = declaration
        counter_lines: Dict[str, int] = {}
        known_attrs: Set[str] = set()
        for statement in class_node.body:
            if isinstance(statement, ast.AnnAssign) and \
                    isinstance(statement.target, ast.Name):
                known_attrs.add(statement.target.id)
                annotation = statement.annotation
                if isinstance(annotation, ast.Name) and annotation.id == "int":
                    counter_lines[statement.target.id] = statement.lineno
            elif isinstance(statement, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                known_attrs.add(statement.name)

        findings: List[Finding] = []
        stored_attrs: Set[str] = set()
        for module in modules:
            if module.rel == defining.rel:
                continue
            for target, node in self._attribute_stores(module.tree):
                stored_attrs.add(target.attr)
                base = dotted_name(target.value)
                if base in self._RESULT_NAMES and \
                        target.attr not in known_attrs:
                    findings.append(Finding(
                        rule=self.id, path=module.rel, line=node.lineno,
                        col=node.col_offset, severity=self.severity,
                        message=f"store to {base}.{target.attr}: not a "
                                f"declared {self._RESULT_CLASS} field "
                                "(typo or unregistered counter)"))
            for call in self._constructor_calls(module.tree):
                stored_attrs.update(keyword.arg for keyword in call.keywords
                                    if keyword.arg is not None)

        for name, lineno in sorted(counter_lines.items()):
            if name not in stored_attrs:
                findings.append(Finding(
                    rule=self.id, path=defining.rel, line=lineno, col=4,
                    severity=self.severity,
                    message=f"counter {self._RESULT_CLASS}.{name} is "
                            "registered but never assigned or incremented "
                            "by any simulation module"))
        return findings

    def _find_declaration(self, modules: Sequence[Module]
                          ) -> Optional[Tuple[Module, ast.ClassDef]]:
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and \
                        node.name == self._RESULT_CLASS:
                    return module, node
        return None

    @staticmethod
    def _attribute_stores(tree: ast.Module
                          ) -> List[Tuple[ast.Attribute, ast.stmt]]:
        stores: List[Tuple[ast.Attribute, ast.stmt]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        stores.append((target, node))
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.target, ast.Attribute):
                stores.append((node.target, node))
        return stores

    def _constructor_calls(self, tree: ast.Module) -> List[ast.Call]:
        calls: List[ast.Call] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and \
                        name.split(".")[-1] == self._RESULT_CLASS:
                    calls.append(node)
        return calls


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


@register
class PostInitMutationRule(VisitorRule):
    """C2: dataclass fields validated in __post_init__ mutated later."""

    id = "C2"
    title = "validated dataclass field mutated after __post_init__"
    rationale = ("__post_init__ validation (ConfigError et al.) only holds "
                 "at construction time; mutating a validated field afterwards "
                 "reintroduces exactly the inconsistent states the validator "
                 "exists to reject.  Use dataclasses.replace to derive a "
                 "fresh, re-validated instance.")

    _ALLOWED_METHODS = ("__init__", "__post_init__", "__new__")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node):
            field_names = {
                statement.target.id for statement in node.body
                if isinstance(statement, ast.AnnAssign) and
                isinstance(statement.target, ast.Name)}
            has_post_init = any(
                isinstance(statement, ast.FunctionDef) and
                statement.name == "__post_init__" for statement in node.body)
            if has_post_init and field_names:
                for method in node.body:
                    if isinstance(method, ast.FunctionDef) and \
                            method.name not in self._ALLOWED_METHODS:
                        self._check_method(method, field_names)
        self.generic_visit(node)

    def _check_method(self, method: ast.FunctionDef,
                      field_names: Set[str]) -> None:
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self" and \
                        target.attr in field_names:
                    self.report(node, f"field {target.attr!r} is validated "
                                      f"in __post_init__ but mutated in "
                                      f"{method.name}(); use "
                                      "dataclasses.replace instead")
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "object.__setattr__" and len(node.args) >= 2 and \
                        isinstance(node.args[0], ast.Name) and \
                        node.args[0].id == "self" and \
                        isinstance(node.args[1], ast.Constant) and \
                        node.args[1].value in field_names:
                    self.report(node, f"field {node.args[1].value!r} is "
                                      "mutated via object.__setattr__ after "
                                      "__post_init__ validation")


@register
class MutableDefaultRule(VisitorRule):
    """C3: mutable default argument values."""

    id = "C3"
    title = "mutable default argument"
    rationale = ("A mutable default is created once and shared across every "
                 "call; state leaking between simulations through a default "
                 "list/dict/set produces run-order-dependent results.")

    _MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "defaultdict",
                      "OrderedDict", "Counter", "deque")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and \
                name.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        defaults: List[Optional[ast.expr]] = list(args.defaults)
        defaults.extend(args.kw_defaults)
        for default in defaults:
            if default is not None and self._is_mutable(default):
                self.report(default, "mutable default argument is shared "
                                     "across calls; default to None and "
                                     "create the container in the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)


@register
class ExceptionHygieneRule(VisitorRule):
    """C4: bare except clauses and silently swallowed broad exceptions."""

    id = "C4"
    title = "bare except / swallowed simulation error"
    rationale = ("A bare except catches KeyboardInterrupt and SystemExit; a "
                 "pass-only handler for SimulationError (or broader) hides "
                 "the exact invariant violations the strict-mode checker "
                 "raises, turning a loud failure into silently wrong tables.")

    _BROAD = ("Exception", "BaseException", "ReproError", "SimulationError")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' catches SystemExit and "
                              "KeyboardInterrupt; name the exception types")
        elif self._swallows(node.body):
            for caught in self._caught_names(node.type):
                if caught in self._BROAD:
                    self.report(node, f"handler catches {caught} and "
                                      "silently discards it; handle, log, "
                                      "or re-raise")
                    break
        self.generic_visit(node)

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and \
                    isinstance(statement.value, ast.Constant) and \
                    statement.value.value is Ellipsis:
                continue
            return False
        return True

    @staticmethod
    def _caught_names(node: ast.expr) -> List[str]:
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        names: List[str] = []
        for element in elements:
            name = dotted_name(element)
            if name is not None:
                names.append(name.split(".")[-1])
        return names


@register
class UnorderedSumRule(VisitorRule):
    """C5: float accumulation via sum() over an unordered iterable."""

    id = "C5"
    title = "sum() over an unordered iterable"
    rationale = ("Float addition is not associative: summing a set visits "
                 "elements in hash order, so the rounding error — and thus "
                 "the reported metric — varies between processes.  Sum a "
                 "sorted(...) sequence (or use math.fsum) instead.")

    def begin(self, module: Module) -> None:
        self._imports = ImportMap(module.tree)
        self._sets = SetTracker(module.tree, self._imports)

    def visit_Call(self, node: ast.Call) -> None:
        if is_builtin_call(node, ("sum",), self._imports) and node.args:
            source = node.args[0]
            if self._sets.is_setish(source):
                label = dotted_name(source) or "a set expression"
                self.report(node, f"sum() accumulates {label!r} in set "
                                  "order; float rounding then depends on "
                                  "the hash seed — sum sorted(...) instead")
            elif isinstance(source, (ast.GeneratorExp, ast.ListComp)):
                for generator in source.generators:
                    if self._sets.is_setish(generator.iter):
                        label = dotted_name(generator.iter) or \
                            "a set expression"
                        self.report(node, f"sum() over a comprehension "
                                          f"iterating {label!r} accumulates "
                                          "in set order; iterate "
                                          "sorted(...) instead")
                        break
        self.generic_visit(node)
