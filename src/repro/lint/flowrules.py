"""Flow-sensitive simlint rules (the F family).

These rules run the :mod:`repro.lint.dataflow` analyses over per-function
CFGs instead of pattern-matching single statements, so they can reason
about *paths*: an RNG that is unseeded on one branch, a local that is
assigned only inside an ``if``, a store that no use ever reaches.

All four rules share one analysis bundle per function — CFG, scope facts,
def-use chains, definite assignment — cached on ``Module.analysis_cache``
so the per-file cost is paid once per engine run, not once per rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .cfg import Cfg, Element, FunctionNode, build_cfg
from .dataflow import (
    DataflowResult,
    DefiniteAssignment,
    DefUse,
    ForwardAnalysis,
    ScopeInfo,
    build_function_nodes,
    compute_def_use,
    element_defs,
    element_uses,
    element_walrus_names,
    scope_info,
)
from .engine import ImportMap, Module, VisitorRule, dotted_name, register
from .finding import Finding, Severity

_CACHE_KEY = "flow:functions"


@dataclass
class FunctionInfo:
    """One function's shared analysis bundle (built lazily, cached)."""

    func: FunctionNode
    cfg: Cfg
    scope: ScopeInfo
    _def_use: Optional[DefUse] = None
    _assignment: Optional[Tuple[DefiniteAssignment, DataflowResult]] = None

    @property
    def is_module_body(self) -> bool:
        return isinstance(self.func, ast.Module)

    def def_use(self) -> DefUse:
        if self._def_use is None:
            self._def_use = compute_def_use(self.cfg, self.scope)
        return self._def_use

    def assignment(self) -> Tuple[DefiniteAssignment, DataflowResult]:
        if self._assignment is None:
            analysis = DefiniteAssignment(self.cfg, self.scope)
            self._assignment = (analysis, analysis.run(self.cfg))
        return self._assignment


def function_infos(module: Module) -> List[FunctionInfo]:
    """The module body's and every function's bundle, cached per module."""
    cached = module.analysis_cache.get(_CACHE_KEY)
    if cached is None:
        cached = []
        for func in build_function_nodes(module.tree):
            cfg = build_cfg(func)
            cached.append(FunctionInfo(func=func, cfg=cfg,
                                       scope=scope_info(cfg)))
        module.analysis_cache[_CACHE_KEY] = cached
    infos: List[FunctionInfo] = cached
    return infos


def module_imports(module: Module) -> ImportMap:
    imports = module.analysis_cache.get("flow:imports")
    if imports is None:
        imports = ImportMap(module.tree)
        module.analysis_cache["flow:imports"] = imports
    result: ImportMap = imports
    return result


class FlowRule(VisitorRule):
    """A per-file rule driven by dataflow results instead of AST dispatch.

    Subclasses implement :meth:`check_function`; the visitor machinery of
    the base class is bypassed (there is nothing to pattern-match — the CFG
    already happened).
    """

    def check_function(self, module: Module, info: FunctionInfo) -> None:
        raise NotImplementedError

    def check(self, module: Module) -> List[Finding]:
        self._module = module
        self._findings = []
        try:
            for info in function_infos(module):
                self.check_function(module, info)
        finally:
            self._module = None
        return self._findings


# -- F1: unseeded RNG reaching a draw ----------------------------------------

#: RNG constructors that are deterministic only when given a seed argument.
_RNG_FACTORIES = ("random.Random", "numpy.random.default_rng",
                  "numpy.random.RandomState")

#: Methods that do not consume randomness (calling them on an unseeded
#: generator is fine; ``seed`` even repairs it).
_RNG_NON_DRAWS = ("seed", "getstate", "setstate", "bit_generator", "spawn")


class _UnseededRngReach(ForwardAnalysis):
    """May-analysis: which unseeded-RNG bindings reach each point.

    Facts are indices into ``self.sites``.  A re-assignment of the bound
    name kills its facts; so does an explicit ``name.seed(...)`` call,
    which is the one statement that turns an unseeded generator into a
    seeded one in place.
    """

    may = True

    def __init__(self, cfg: Cfg, imports: ImportMap) -> None:
        self.imports = imports
        #: (name, assign node) per unseeded construction site.
        self.sites: List[Tuple[str, ast.AST]] = []
        self._gen: Dict[int, FrozenSet[int]] = {}
        self._kill_names: Dict[int, FrozenSet[str]] = {}
        for element in cfg.elements():
            gen: Set[int] = set()
            killed: Set[str] = set()
            for name, _node in element_defs(element):
                killed.add(name)
            node = element.node
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    self._is_unseeded_factory(node.value):
                gen.add(len(self.sites))
                self.sites.append((node.targets[0].id, node))
            killed.update(self._seeded_names(node))
            self._gen[id(element)] = frozenset(gen)
            self._kill_names[id(element)] = frozenset(killed)

    def _is_unseeded_factory(self, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call) or value.args or value.keywords:
            return False
        canonical = self.imports.canonical(value.func)
        return canonical in _RNG_FACTORIES

    @staticmethod
    def _seeded_names(node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Attribute) and \
                    child.func.attr == "seed" and \
                    isinstance(child.func.value, ast.Name):
                names.add(child.func.value.id)
        return names

    def transfer(self, element: Element,
                 state: FrozenSet[int]) -> FrozenSet[int]:
        killed = self._kill_names[id(element)]
        survivors = frozenset(
            fact for fact in state if self.sites[fact][0] not in killed)
        return survivors | self._gen[id(element)]


@register
class UnseededRngReachRule(FlowRule):
    """F1: a draw on an RNG that was constructed without a seed on some path."""

    id = "F1"
    title = "unseeded RNG instance reaches a draw"
    rationale = ("random.Random() / numpy.random.default_rng() without a "
                 "seed is only safe if every path seeds it before the first "
                 "draw; reaching-definitions over the CFG proves otherwise. "
                 "Pass the seed at construction (the sweep runner's --seed "
                 "plumbing hands one to every component).")

    def check_function(self, module: Module, info: FunctionInfo) -> None:
        imports = module_imports(module)
        analysis = _UnseededRngReach(info.cfg, imports)
        if not analysis.sites:
            return
        result = analysis.run(info.cfg)
        for element, state in analysis.element_states(info.cfg, result):
            if not state:
                continue
            live = {analysis.sites[fact][0] for fact in state}
            for call in ast.walk(element.node):
                if isinstance(call, ast.Call) and \
                        isinstance(call.func, ast.Attribute) and \
                        isinstance(call.func.value, ast.Name) and \
                        call.func.value.id in live and \
                        call.func.attr not in _RNG_NON_DRAWS:
                    name = call.func.value.id
                    self.report(call, f"{name}.{call.func.attr}() draws from "
                                      f"an RNG constructed without a seed "
                                      f"({name!r} is unseeded on at least "
                                      "one path to this call)")


# -- F2: mutation after validation -------------------------------------------

#: Method names that mark an object as validated/finalized.
_VALIDATE_METHODS = ("validate", "finalize", "freeze")


class _ValidatedReach(ForwardAnalysis):
    """May-analysis: which ``obj.validate()`` calls reach each point.

    Facts index ``self.sites``: (dotted base, call node).  A re-assignment
    of the base name (or its root) kills the fact — the name now holds a
    different, unvalidated object.
    """

    may = True

    def __init__(self, cfg: Cfg) -> None:
        self.sites: List[Tuple[str, ast.AST]] = []
        self._gen: Dict[int, FrozenSet[int]] = {}
        self._kill_names: Dict[int, FrozenSet[str]] = {}
        for element in cfg.elements():
            gen: Set[int] = set()
            killed: Set[str] = {name for name, _ in element_defs(element)}
            for child in ast.walk(element.node):
                if isinstance(child, ast.Call) and \
                        isinstance(child.func, ast.Attribute) and \
                        child.func.attr in _VALIDATE_METHODS:
                    base = dotted_name(child.func.value)
                    if base is not None:
                        gen.add(len(self.sites))
                        self.sites.append((base, child))
            self._gen[id(element)] = frozenset(gen)
            self._kill_names[id(element)] = frozenset(killed)

    def transfer(self, element: Element,
                 state: FrozenSet[int]) -> FrozenSet[int]:
        killed = self._kill_names[id(element)]
        survivors = frozenset(
            fact for fact in state
            if self.sites[fact][0].split(".")[0] not in killed)
        return survivors | self._gen[id(element)]


@register
class MutationAfterValidateRule(FlowRule):
    """F2: attribute store on an object after a path that validated it."""

    id = "F2"
    title = "object mutated after validation"
    rationale = ("A validate()/finalize() call certifies the object's state "
                 "at that moment; mutating a field afterwards reintroduces "
                 "exactly the inconsistencies the validator rejects, on "
                 "precisely the paths where validation already ran. "
                 "Re-validate after the mutation or build a new object.")

    def check_function(self, module: Module, info: FunctionInfo) -> None:
        analysis = _ValidatedReach(info.cfg)
        if not analysis.sites:
            return
        result = analysis.run(info.cfg)
        for element, state in analysis.element_states(info.cfg, result):
            if not state:
                continue
            validated = {analysis.sites[fact][0]: analysis.sites[fact][1]
                         for fact in state}
            node = element.node
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = dotted_name(target.value)
                if base in validated:
                    call = validated[base]
                    self.report(node, f"{base}.{target.attr} is mutated "
                                      f"after {base}.validate-style call on "
                                      f"line {getattr(call, 'lineno', '?')}; "
                                      "the validated invariants no longer "
                                      "hold on that path")


# -- F3: possibly-unassigned local -------------------------------------------

@register
class PossiblyUnassignedRule(FlowRule):
    """F3: a local read on a path where no assignment dominates it."""

    id = "F3"
    title = "possibly-unassigned local variable"
    rationale = ("A name assigned only inside one branch (or only in a try "
                 "body that can raise before the binding) raises "
                 "UnboundLocalError on the other path — in a simulator that "
                 "usually means an uncovered config combination, found at "
                 "sweep time instead of lint time.  Definite-assignment "
                 "analysis proves the gap; loop bodies are assumed to run "
                 "at least once.")
    severity = Severity.WARNING

    def check_function(self, module: Module, info: FunctionInfo) -> None:
        if info.is_module_body:
            # Module-level conditional definitions (try/except ImportError,
            # platform switches) are an accepted idiom.
            return
        analysis, result = info.assignment()
        local_names = info.scope.local_names
        reported: Set[str] = set()
        for element, state in analysis.element_states(info.cfg, result):
            if state is None:
                continue   # unreachable code; not this rule's business
            # A walrus inside the element binds before the element's own
            # reads can observe it (comprehension guards); too fine-grained
            # for element-level replay, so those names get a pass here.
            walrus = element_walrus_names(element)
            for use in element_uses(element):
                name = use.id
                if name not in local_names or name in reported or \
                        name in walrus:
                    continue
                fact = analysis.fact(name)
                if fact is not None and fact not in state:
                    reported.add(name)
                    self.report(use, f"{name!r} may be unassigned here: no "
                                     "assignment reaches this use on every "
                                     "path (assign a default before the "
                                     "branch)")


# -- F4: dead store ----------------------------------------------------------

@register
class DeadStoreRule(FlowRule):
    """F4: an assignment no use can ever observe."""

    id = "F4"
    title = "dead store"
    rationale = ("An assignment that no later read can reach is either "
                 "leftover scaffolding or — worse — a result that was meant "
                 "to be returned or accumulated and silently is not.  "
                 "Def-use chains over the CFG find both.")
    severity = Severity.WARNING

    def check_function(self, module: Module, info: FunctionInfo) -> None:
        if info.is_module_body:
            return   # module-level names are the module's public surface
        chains = info.def_use()
        escaping = info.scope.escaping
        for definition in chains.definitions:
            if definition.is_param or definition.element is None:
                continue
            node = definition.element.node
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue   # only plain single-name stores; unpacking and
            # augmented/loop bindings have legitimate partial uses
            name = definition.name
            if name.startswith("_") or name in escaping:
                continue
            if not chains.uses_of_def.get(definition.id):
                self.report(node, f"store to {name!r} is dead: no path "
                                  "reads this value before it is "
                                  "overwritten or goes out of scope")
