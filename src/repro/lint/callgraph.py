"""Project-wide call graph with conservative resolution and effect stubs.

The async/thread-safety rules (A1-A5) need to know what a function call
*eventually does* — does ``self.service.lookup(spec)`` reach ``os.fsync``?
Is ``self._feed`` ever handed to a ``threading.Thread``?  Answering that
requires a whole-program view, so this module builds one :class:`CallGraph`
per engine run (cached on the :class:`~repro.lint.engine.ProjectContext`)
in two phases:

1. **Indexing** — one walk per module collecting every function/method
   declaration (``FunctionDecl``), every class with its methods, base
   names and inferred attribute types (``ClassDecl``), and the module's
   import aliases (absolute *and* relative — the engine's own packages
   import relatively, which :class:`~repro.lint.engine.ImportMap`
   deliberately ignores).
2. **Resolution** — a second walk per function body turning every call
   expression into a :class:`CallSite`: resolved project callees, spawn
   targets (``Thread(target=...)``, ``run_in_executor``,
   ``asyncio.to_thread``), and *direct effect sinks* from the stdlib stub
   tables below.

Resolution is deliberately **conservative (may-call)**:

- ``self.m()`` dispatches to ``m`` in the receiver class, its named base
  classes *and* every project subclass that overrides ``m`` (the static
  analyzer cannot rule the override out);
- an attribute call on a receiver whose type cannot be inferred falls back
  to the *unique-name* heuristic: it resolves only if exactly one project
  class defines a method of that name, otherwise the edge is dropped
  (precision over noise — see DESIGN.md section 14 for the soundness
  caveats this buys);
- a name imported ``from .x import y`` resolves against the project-wide
  declaration registry by bare name, so relative imports work without
  package-path arithmetic.

Type inference reuses the contracts-rule philosophy: annotations first,
single-assignment locals second, poisoning on conflict, and ``None`` (no
edge) whenever the evidence is ambiguous.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import ImportMap, Module, dotted_name

# -- effect tags --------------------------------------------------------------

BLOCKING = "blocking"
SPAWNS_THREAD = "spawns-thread"
SPAWNS_PROCESS = "spawns-process"
NONDET = "nondet"

EFFECTS = (BLOCKING, SPAWNS_THREAD, SPAWNS_PROCESS, NONDET)

#: Edge kinds.  ``call`` is ordinary synchronous invocation; the spawn kinds
#: record that the callee runs on *another* thread/process, which matters
#: for effect propagation (a thread target's blocking does not block the
#: spawner) and for the A4/A5 reachability sets.
EDGE_CALL = "call"
EDGE_THREAD = "thread"
EDGE_PROCESS = "process"
EDGE_EXECUTOR = "executor"

# -- stdlib stub tables -------------------------------------------------------

def _fs(*effects: str) -> FrozenSet[str]:
    return frozenset(effects)


#: Canonical dotted call (after import-alias rewriting) -> effects.
CANONICAL_SINKS: Dict[str, FrozenSet[str]] = {
    "time.sleep": _fs(BLOCKING),
    "os.fsync": _fs(BLOCKING),
    "os.replace": _fs(BLOCKING),
    "os.rename": _fs(BLOCKING),
    "os.remove": _fs(BLOCKING),
    "os.unlink": _fs(BLOCKING),
    "os.makedirs": _fs(BLOCKING),
    "os.listdir": _fs(BLOCKING),
    "os.scandir": _fs(BLOCKING),
    "os.stat": _fs(BLOCKING),
    "os.fork": _fs(SPAWNS_PROCESS),
    "shutil.copy": _fs(BLOCKING),
    "shutil.copyfile": _fs(BLOCKING),
    "shutil.copytree": _fs(BLOCKING),
    "shutil.move": _fs(BLOCKING),
    "shutil.rmtree": _fs(BLOCKING),
    "tempfile.mkstemp": _fs(BLOCKING),
    "tempfile.mkdtemp": _fs(BLOCKING),
    "tempfile.NamedTemporaryFile": _fs(BLOCKING),
    "tempfile.TemporaryDirectory": _fs(BLOCKING),
    "socket.create_connection": _fs(BLOCKING),
    "select.select": _fs(BLOCKING),
    "subprocess.run": _fs(BLOCKING, SPAWNS_PROCESS),
    "subprocess.call": _fs(BLOCKING, SPAWNS_PROCESS),
    "subprocess.check_call": _fs(BLOCKING, SPAWNS_PROCESS),
    "subprocess.check_output": _fs(BLOCKING, SPAWNS_PROCESS),
    "asyncio.run": _fs(BLOCKING),
    "time.time": _fs(NONDET),
    "time.time_ns": _fs(NONDET),
    "datetime.datetime.now": _fs(NONDET),
    "datetime.datetime.utcnow": _fs(NONDET),
    "datetime.datetime.today": _fs(NONDET),
    "datetime.date.today": _fs(NONDET),
    "os.urandom": _fs(NONDET),
    "uuid.uuid1": _fs(NONDET),
    "uuid.uuid4": _fs(NONDET),
    "secrets.token_bytes": _fs(NONDET),
    "secrets.token_hex": _fs(NONDET),
    "secrets.randbelow": _fs(NONDET),
}

#: Seeded numpy factories (mirrors D1): nondet only when called bare.
_NUMPY_SEEDED_FACTORIES = ("numpy.random.default_rng",
                           "numpy.random.Generator",
                           "numpy.random.RandomState",
                           "numpy.random.SeedSequence")

#: Canonical constructor -> external type name it produces.
EXTERNAL_CONSTRUCTORS: Dict[str, str] = {
    "threading.Lock": "threading.Lock",
    "threading.RLock": "threading.RLock",
    "threading.Condition": "threading.Condition",
    "threading.Semaphore": "threading.Semaphore",
    "threading.BoundedSemaphore": "threading.BoundedSemaphore",
    "threading.Event": "threading.Event",
    "threading.Thread": "threading.Thread",
    "multiprocessing.Process": "multiprocessing.Process",
    "subprocess.Popen": "subprocess.Popen",
    "queue.Queue": "queue.Queue",
    "queue.LifoQueue": "queue.Queue",
    "queue.PriorityQueue": "queue.Queue",
    "queue.SimpleQueue": "queue.Queue",
    "pathlib.Path": "pathlib.Path",
    "pathlib.PurePath": "pathlib.Path",
    "pathlib.PosixPath": "pathlib.Path",
    "pathlib.WindowsPath": "pathlib.Path",
    "asyncio.Lock": "asyncio.Lock",
    "asyncio.Event": "asyncio.Event",
    "asyncio.Condition": "asyncio.Condition",
    "asyncio.Semaphore": "asyncio.Semaphore",
    "asyncio.BoundedSemaphore": "asyncio.BoundedSemaphore",
    "asyncio.Queue": "asyncio.Queue",
    "asyncio.LifoQueue": "asyncio.Queue",
    "asyncio.PriorityQueue": "asyncio.Queue",
    "concurrent.futures.ThreadPoolExecutor":
        "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor":
        "concurrent.futures.ProcessPoolExecutor",
}

#: External callables whose *return value* has a known external type.
EXTERNAL_RETURNS: Dict[str, str] = {
    "asyncio.get_running_loop": "asyncio.AbstractEventLoop",
    "asyncio.get_event_loop": "asyncio.AbstractEventLoop",
}

#: threading synchronization types (for A3 and the with-lock sink).
THREADING_LOCK_TYPES = frozenset((
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore"))

#: asyncio primitives that are only safe from the event loop (for A5).
ASYNCIO_PRIMITIVES = frozenset((
    "asyncio.Lock", "asyncio.Event", "asyncio.Condition",
    "asyncio.Semaphore", "asyncio.BoundedSemaphore", "asyncio.Queue"))

_PATH_BLOCKING_METHODS = frozenset((
    "open", "read_text", "read_bytes", "write_text", "write_bytes",
    "mkdir", "rmdir", "unlink", "touch", "rename", "replace", "glob",
    "rglob", "iterdir", "exists", "stat", "resolve", "samefile"))

#: (external type, method) -> effects, for receivers with inferred types.
TYPED_METHOD_SINKS: Dict[Tuple[str, str], FrozenSet[str]] = {}
for _lock_type in sorted(THREADING_LOCK_TYPES):
    TYPED_METHOD_SINKS[(_lock_type, "acquire")] = _fs(BLOCKING)
TYPED_METHOD_SINKS.update({
    ("threading.Condition", "wait"): _fs(BLOCKING),
    ("threading.Condition", "wait_for"): _fs(BLOCKING),
    ("threading.Event", "wait"): _fs(BLOCKING),
    ("queue.Queue", "get"): _fs(BLOCKING),
    ("queue.Queue", "put"): _fs(BLOCKING),
    ("queue.Queue", "join"): _fs(BLOCKING),
    ("subprocess.Popen", "wait"): _fs(BLOCKING),
    ("subprocess.Popen", "communicate"): _fs(BLOCKING),
    ("threading.Thread", "join"): _fs(BLOCKING),
    ("multiprocessing.Process", "join"): _fs(BLOCKING),
    ("threading.Thread", "start"): _fs(SPAWNS_THREAD),
    ("multiprocessing.Process", "start"): _fs(SPAWNS_PROCESS),
})
for _method in sorted(_PATH_BLOCKING_METHODS):
    TYPED_METHOD_SINKS[("pathlib.Path", _method)] = _fs(BLOCKING)

#: Method names distinctive enough to flag on an *unknown* receiver.
#: Deliberately excludes ambiguous names (``get``, ``put``, ``join``,
#: ``wait``, ``send``, ``recv``): a false edge into the blocking lattice
#: poisons every transitive caller, so only near-unambiguous names qualify.
NAME_METHOD_SINKS: Dict[str, FrozenSet[str]] = {
    name: _fs(BLOCKING)
    for name in ("read_text", "read_bytes", "write_text", "write_bytes",
                 "fsync", "glob", "rglob", "iterdir", "communicate",
                 "acquire", "rmtree", "makedirs", "mkdtemp",
                 "run_until_complete")}

#: Builtins with effects.
BUILTIN_SINKS: Dict[str, FrozenSet[str]] = {
    "open": _fs(BLOCKING),
    "input": _fs(BLOCKING),
}

#: Scheduler shapes: method/canonical name -> (edge kind, target arg index).
#: ``run_in_executor(executor, func, *args)`` offloads ``func`` to a worker
#: thread — the sanctioned A1 fix — so its edge kind is ``executor``.
_METHOD_SCHEDULERS: Dict[str, Tuple[str, int]] = {
    "run_in_executor": (EDGE_EXECUTOR, 1),
    "submit": (EDGE_EXECUTOR, 0),
    "Thread": (EDGE_THREAD, -1),      # target= keyword (or positional 1)
    "Process": (EDGE_PROCESS, -1),
}
_CANONICAL_SCHEDULERS: Dict[str, Tuple[str, int]] = {
    "asyncio.to_thread": (EDGE_EXECUTOR, 0),
    "threading.Thread": (EDGE_THREAD, -1),
    "multiprocessing.Process": (EDGE_PROCESS, -1),
}
_SCHEDULER_SPAWN_EFFECT = {EDGE_THREAD: SPAWNS_THREAD,
                           EDGE_PROCESS: SPAWNS_PROCESS,
                           EDGE_EXECUTOR: SPAWNS_THREAD}

#: Method names the *unique-name* fallback must never resolve: anything a
#: builtin container/string (or a file/socket handle) also answers to.  A
#: project class happening to be the only one defining ``get`` must not
#: capture every ``some_dict.get(...)`` in the codebase — a false call
#: edge into the blocking lattice would poison every transitive caller.
_UNIQUE_FALLBACK_EXCLUDE = frozenset(
    name for builtin_type in (dict, list, set, frozenset, str, bytes, tuple)
    for name in dir(builtin_type)) | frozenset((
        "close", "read", "write", "flush", "fileno", "readline",
        "readlines", "wait", "poll", "send", "recv", "get", "put",
        "open", "release", "notify", "notify_all"))


# -- declarations -------------------------------------------------------------

@dataclass
class FunctionDecl:
    """One function, method, or nested function in the project."""

    fid: str                        # "<module rel>::<qualname>"
    module_rel: str
    qualname: str                   # "Class.method", "outer.inner", ...
    node: ast.AST                   # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_name: Optional[str]       # immediate owner class, if a method
    line: int
    #: directly nested function defs: local name -> fid.
    nested: Dict[str, str] = field(default_factory=dict)
    enclosing: Optional[str] = None  # fid of the lexically enclosing function


@dataclass
class ClassDecl:
    """One project class: methods, base names, inferred attribute types."""

    name: str
    module_rel: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)    # trailing base names
    methods: Dict[str, str] = field(default_factory=dict)   # name -> fid
    #: ``self.<attr>`` -> type name (project class or external dotted name).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call (or lock-acquisition) inside a function body."""

    node: ast.AST
    line: int
    col: int
    label: str                                  # rendered callee expression
    callees: Tuple[str, ...] = ()               # normal call edges (fids)
    spawned: Tuple[Tuple[str, str], ...] = ()   # (fid, edge kind)
    sinks: Tuple[Tuple[str, str], ...] = ()     # (effect, sink name)
    is_lock_with: bool = False                  # a ``with <threading lock>:``


@dataclass
class LockWith:
    """A ``with`` block over a threading lock (A3's subject)."""

    node: ast.With
    label: str
    contains_await: bool


@dataclass
class PrimitiveTouch:
    """A method call on an asyncio primitive (A5's subject)."""

    node: ast.AST
    label: str
    type_name: str


@dataclass
class AttrWrite:
    """A ``self.<attr>`` store, with the with-contexts held around it."""

    node: ast.AST
    attr: str
    held: FrozenSet[str]


@dataclass
class FunctionFacts:
    """Everything phase 2 learned about one function body."""

    decl: FunctionDecl
    sites: List[CallSite] = field(default_factory=list)
    lock_withs: List[LockWith] = field(default_factory=list)
    touches: List[PrimitiveTouch] = field(default_factory=list)
    writes: List[AttrWrite] = field(default_factory=list)


@dataclass
class CallGraph:
    """The whole-program call graph plus per-function facts."""

    functions: Dict[str, FunctionDecl] = field(default_factory=dict)
    facts: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, List[ClassDecl]] = field(default_factory=dict)

    def successors(self, fid: str) -> Iterator[Tuple[str, str]]:
        """(callee fid, edge kind) pairs out of one function."""
        for site in self.facts[fid].sites:
            for callee in site.callees:
                yield callee, EDGE_CALL
            for target, kind in site.spawned:
                yield target, kind

    def spawn_targets(self, kinds: Sequence[str]) -> Set[str]:
        """Functions handed to a spawner of one of the given edge kinds."""
        targets: Set[str] = set()
        for facts in self.facts.values():
            for site in facts.sites:
                for target, kind in site.spawned:
                    if kind in kinds:
                        targets.add(target)
        return targets


# -- annotation / name helpers ------------------------------------------------

def annotation_type_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """Dotted type name of an annotation: ``asyncio.Lock`` stays dotted,
    project classes come back bare; unwraps ``Optional[...]`` and string
    annotations; ``None`` for anything structurally richer."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        head = dotted_name(annotation.value)
        if head is not None and head.split(".")[-1] == "Optional":
            return annotation_type_name(annotation.slice)
        return None
    return dotted_name(annotation)


def _own_statement_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _contains_await(node: ast.AST) -> bool:
    for child in _own_statement_walk(node):
        if isinstance(child, ast.Await):
            return True
    return False


# -- phase 1: indexing --------------------------------------------------------

class _ModuleIndex:
    """Per-module declarations and import aliases."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.rel = module.rel
        self.imports = ImportMap(module.tree)
        #: local name -> imported *bare* member name (any import level, so
        #: relative imports resolve through the global registry too).
        self.member_alias: Dict[str, str] = {}
        self.top_functions: Dict[str, str] = {}
        self.top_classes: Dict[str, ClassDecl] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        local = alias.asname or alias.name
                        self.member_alias[local] = alias.name


def _index_module(index: _ModuleIndex, graph: CallGraph) -> None:
    """Collect declarations (functions, methods, classes) of one module."""

    def walk(node: ast.AST, qual: str, class_name: Optional[str],
             enclosing: Optional[FunctionDecl]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                decl = ClassDecl(
                    name=child.name, module_rel=index.rel, node=child,
                    bases=[name.split(".")[-1]
                           for name in (dotted_name(base)
                                        for base in child.bases)
                           if name is not None])
                if qual == "" and enclosing is None:
                    index.top_classes[child.name] = decl
                graph.classes.setdefault(child.name, []).append(decl)
                prefix = f"{qual}.{child.name}" if qual else child.name
                walk(child, prefix, child.name, None)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{qual}.{child.name}" if qual else child.name
                fid = f"{index.rel}::{qualname}"
                decl = FunctionDecl(
                    fid=fid, module_rel=index.rel, qualname=qualname,
                    node=child,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    class_name=class_name, line=child.lineno,
                    enclosing=enclosing.fid if enclosing else None)
                graph.functions[fid] = decl
                if enclosing is not None:
                    enclosing.nested[child.name] = fid
                elif class_name is not None and \
                        class_name in graph.classes:
                    for class_decl in graph.classes[class_name]:
                        if class_decl.node is node:
                            class_decl.methods[child.name] = fid
                elif qual == "":
                    index.top_functions[child.name] = fid
                walk(child, qualname, None, decl)
            else:
                walk(child, qual, class_name, enclosing)

    walk(index.module.tree, "", None, None)


# -- phase 2: type inference + resolution -------------------------------------

class _Resolver:
    """Resolution context of one module: types, callees, method dispatch."""

    def __init__(self, index: _ModuleIndex, graph: CallGraph,
                 project_functions: Dict[str, List[str]],
                 project_methods: Dict[str, List[str]]) -> None:
        self.index = index
        self.graph = graph
        self.project_functions = project_functions
        self.project_methods = project_methods

    # -- classes --------------------------------------------------------------

    def classes_named(self, name: str) -> List[ClassDecl]:
        local = self.index.top_classes.get(name)
        if local is not None:
            return [local]
        target = self.index.member_alias.get(name, name)
        bare = target.split(".")[-1]
        return self.graph.classes.get(bare, [])

    def normalize_type(self, name: Optional[str]) -> Optional[str]:
        """Canonicalize a type name written in this module: project classes
        stay bare, imported externals become dotted (``Path`` written under
        ``from pathlib import Path`` -> ``pathlib.Path``)."""
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            if self.classes_named(name):
                return self.classes_named(name)[0].name
            canonical = self.index.imports.member_aliases.get(name)
            return canonical if canonical is not None else name
        head = self.index.imports.module_aliases.get(parts[0]) or \
            self.index.imports.member_aliases.get(parts[0])
        if head is not None:
            return ".".join([head] + parts[1:])
        return name

    def annotation_type(self, annotation: Optional[ast.AST]
                        ) -> Optional[str]:
        """Normalized type of an annotation, or None when it names neither
        a project class nor a dotted external type."""
        annotated = self.normalize_type(annotation_type_name(annotation))
        if annotated is None:
            return None
        if "." in annotated or self.classes_named(annotated):
            return annotated
        return None

    def _subclasses(self, name: str) -> List[ClassDecl]:
        out: List[ClassDecl] = []
        for decls in self.graph.classes.values():
            for decl in decls:
                if name in decl.bases:
                    out.append(decl)
        return out

    def dispatch(self, class_name: str, method: str) -> List[str]:
        """Conservative method dispatch: the class, its named bases, and
        every project subclass that overrides the method."""
        fids: List[str] = []
        seen: Set[str] = set()

        def lookup_up(name: str) -> Optional[str]:
            if name in seen:
                return None
            seen.add(name)
            for decl in self.graph.classes.get(name, []):
                fid = decl.methods.get(method)
                if fid is not None:
                    return fid
                for base in decl.bases:
                    found = lookup_up(base)
                    if found is not None:
                        return found
            return None

        own = lookup_up(class_name)
        if own is not None:
            fids.append(own)
        for sub in self._subclasses(class_name):
            fid = sub.methods.get(method)
            if fid is not None and fid not in fids:
                fids.append(fid)
        return fids

    # -- expression types -----------------------------------------------------

    def expr_type(self, node: ast.AST, env: Dict[str, str],
                  self_class: Optional[str]) -> Optional[str]:
        """Type name of an expression (project class or external dotted
        name), or None when unprovable."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in ("self", "cls"):
                return self_class
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id in ("self", "cls") and \
                    self_class is not None:
                return self._class_attr_type(self_class, node.attr)
            base = self.expr_type(node.value, env, self_class)
            if base is None:
                return None
            return self._class_attr_type(base, node.attr) \
                if base in self.graph.classes else None
        if isinstance(node, ast.Call):
            return self.call_result_type(node, env, self_class)
        if isinstance(node, ast.IfExp):
            return self.expr_type(node.body, env, self_class) or \
                self.expr_type(node.orelse, env, self_class)
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            for operand in node.values:
                resolved = self.expr_type(operand, env, self_class)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            # pathlib's ``base / "part"`` keeps the Path type.
            left = self.expr_type(node.left, env, self_class)
            return left if left == "pathlib.Path" else None
        if isinstance(node, ast.Await):
            return self.expr_type(node.value, env, self_class)
        return None

    def _class_attr_type(self, class_name: str, attr: str) -> Optional[str]:
        for decl in self.graph.classes.get(class_name, []):
            found = decl.attr_types.get(attr)
            if found is not None:
                return found
        return None

    def call_result_type(self, node: ast.Call, env: Dict[str, str],
                         self_class: Optional[str]) -> Optional[str]:
        canonical = self.index.imports.canonical(node.func)
        if canonical is not None:
            if canonical in EXTERNAL_CONSTRUCTORS:
                return EXTERNAL_CONSTRUCTORS[canonical]
            if canonical in EXTERNAL_RETURNS:
                return EXTERNAL_RETURNS[canonical]
        callee = dotted_name(node.func)
        if callee is not None:
            bare = callee.split(".")[-1]
            if self.classes_named(bare):
                return bare
            # A call to a project function with an annotated return type.
            return_types = {
                self.annotation_type(decl.node.returns)
                for fid in self._function_fids(bare)
                for decl in (self.graph.functions[fid],)
                if isinstance(decl.node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))}
            if len(return_types) == 1:
                only = next(iter(return_types))
                if only is not None:
                    return only
        if isinstance(node.func, ast.Attribute):
            receiver = self.expr_type(node.func.value, env, self_class)
            if receiver is not None:
                fids = self.dispatch(receiver, node.func.attr) \
                    if receiver in self.graph.classes else []
                return_types = {
                    self.annotation_type(
                        self.graph.functions[fid].node.returns)  # type: ignore[attr-defined]
                    for fid in fids}
                if len(return_types) == 1:
                    only = next(iter(return_types))
                    if only is not None:
                        return only
        return None

    def _function_fids(self, bare_name: str) -> List[str]:
        local = self.index.top_functions.get(bare_name)
        if local is not None:
            return [local]
        return self.project_functions.get(bare_name, [])

    # -- callable resolution --------------------------------------------------

    def resolve_name_call(self, name: str,
                          decl: FunctionDecl) -> List[str]:
        """Project callees of a bare-name call inside ``decl``."""
        current: Optional[FunctionDecl] = decl
        while current is not None:
            if name in current.nested:
                return [current.nested[name]]
            current = self.graph.functions.get(current.enclosing) \
                if current.enclosing else None
        if name in self.index.top_functions:
            return [self.index.top_functions[name]]
        classes = self.classes_named(name)
        if classes:
            return [decl_.methods["__init__"] for decl_ in classes
                    if "__init__" in decl_.methods]
        target = self.index.member_alias.get(name)
        if target is not None:
            return self.project_functions.get(target.split(".")[-1], [])
        return []

    def resolve_func_ref(self, node: ast.AST,
                         decl: FunctionDecl, env: Dict[str, str]
                         ) -> List[str]:
        """Function reference (not a call): ``self._feed``, ``helper``."""
        if isinstance(node, ast.Call):
            # functools.partial(f, ...) and friends: unwrap the head.
            canonical = self.index.imports.canonical(node.func)
            if canonical == "functools.partial" and node.args:
                return self.resolve_func_ref(node.args[0], decl, env)
            return []
        if isinstance(node, ast.Name):
            return self.resolve_name_call(node.id, decl)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id in ("self", "cls") and decl.class_name:
                return self.dispatch(decl.class_name, node.attr)
            receiver = self.expr_type(node.value, env, decl.class_name)
            if receiver is not None and receiver in self.graph.classes:
                return self.dispatch(receiver, node.attr)
            # Class-reference method (``JobSpec.from_dict``).
            head = dotted_name(node.value)
            if head is not None and self.classes_named(head.split(".")[-1]):
                return self.dispatch(
                    self.classes_named(head.split(".")[-1])[0].name,
                    node.attr)
            unique = self.project_methods.get(node.attr, [])
            if len(unique) == 1 and \
                    node.attr not in _UNIQUE_FALLBACK_EXCLUDE:
                return unique
        return []


def _param_env(decl: FunctionDecl, resolver: _Resolver) -> Dict[str, str]:
    env: Dict[str, str] = {}
    node = decl.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return env
    args = node.args
    for arg in (list(getattr(args, "posonlyargs", [])) + args.args +
                args.kwonlyargs):
        annotated = resolver.annotation_type(arg.annotation)
        if annotated is not None:
            env[arg.arg] = annotated
    return env


def _bind(env: Dict[str, str], poisoned: Set[str], name: str,
          type_name: Optional[str]) -> None:
    if name in poisoned:
        return
    if type_name is None:
        if name in env:
            del env[name]
            poisoned.add(name)
        return
    if env.get(name, type_name) != type_name:
        del env[name]
        poisoned.add(name)
        return
    env[name] = type_name


def _local_env(decl: FunctionDecl, resolver: _Resolver) -> Dict[str, str]:
    """Flow-insensitive local type environment of one function body."""
    env = _param_env(decl, resolver)
    poisoned: Set[str] = set()
    assigns = [node for node in _own_statement_walk(decl.node)
               if isinstance(node, (ast.Assign, ast.AnnAssign))]
    for node in sorted(assigns, key=lambda n: (n.lineno, n.col_offset)):
        if isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                annotated = resolver.annotation_type(node.annotation)
                if annotated is not None:
                    _bind(env, poisoned, node.target.id, annotated)
            continue
        value_type = resolver.expr_type(node.value, env, decl.class_name)
        for target in node.targets:
            if isinstance(target, ast.Name):
                _bind(env, poisoned, target.id, value_type)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        _bind(env, poisoned, element.id, None)
    return env


def _infer_class_attr_types(resolvers: List[Tuple[_Resolver, _ModuleIndex]]
                            ) -> None:
    """Fill ``ClassDecl.attr_types`` from annotations and ``self.x = ...``
    stores.  Two passes so attribute chains through other classes resolve
    once those classes' own attributes are known."""
    for _pass in range(2):
        for resolver, index in resolvers:
            for class_decl in index.top_classes.values():
                _scan_class_attrs(class_decl, resolver)


def _scan_class_attrs(class_decl: ClassDecl, resolver: _Resolver) -> None:
    poisoned: Set[str] = set()

    def record(attr: str, type_name: Optional[str]) -> None:
        if attr in poisoned:
            return
        if type_name is None:
            return
        if class_decl.attr_types.get(attr, type_name) != type_name:
            del class_decl.attr_types[attr]
            poisoned.add(attr)
            return
        class_decl.attr_types[attr] = type_name

    for statement in class_decl.node.body:
        if isinstance(statement, ast.AnnAssign) and \
                isinstance(statement.target, ast.Name):
            record(statement.target.id,
                   resolver.annotation_type(statement.annotation))

    for method_fid in class_decl.methods.values():
        decl = resolver.graph.functions[method_fid]
        env = _local_env(decl, resolver)
        for node in sorted(
                (n for n in _own_statement_walk(decl.node)
                 if isinstance(n, (ast.Assign, ast.AnnAssign))),
                key=lambda n: (n.lineno, n.col_offset)):
            targets: List[ast.AST]
            value_type: Optional[str]
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value_type = resolver.annotation_type(node.annotation)
            else:
                targets = list(node.targets)
                value_type = resolver.expr_type(node.value, env,
                                                class_decl.name)
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    record(target.attr, value_type)


# -- phase 2: call-site extraction --------------------------------------------

class _BodyScanner:
    """Walks one function body collecting sites, writes, touches, locks."""

    def __init__(self, decl: FunctionDecl, resolver: _Resolver) -> None:
        self.decl = decl
        self.resolver = resolver
        self.env = _local_env(decl, resolver)
        self.facts = FunctionFacts(decl=decl)

    def scan(self) -> FunctionFacts:
        body = getattr(self.decl.node, "body", [])
        self._visit_statements(body, frozenset())
        return self.facts

    # -- statement recursion (tracks held with-contexts) ----------------------

    def _visit_statements(self, statements: Sequence[ast.stmt],
                          held: FrozenSet[str]) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                self._visit_with(statement, held)
                continue
            self._visit_expressions(statement, held)
            for body_field in ("body", "orelse", "finalbody"):
                nested = getattr(statement, body_field, None)
                if nested:
                    self._visit_statements(nested, held)
            for handler in getattr(statement, "handlers", []) or []:
                self._visit_statements(handler.body, held)

    def _visit_with(self, statement: ast.stmt, held: FrozenSet[str]) -> None:
        labels: Set[str] = set()
        items = statement.items \
            if isinstance(statement, (ast.With, ast.AsyncWith)) else []
        for item in items:
            expr = item.context_expr
            self._visit_expressions_node(expr, held)
            label = dotted_name(expr) or \
                (dotted_name(expr.func) if isinstance(expr, ast.Call)
                 else None) or "<with>"
            labels.add(label)
            lock_type = self.resolver.expr_type(expr, self.env,
                                                self.decl.class_name)
            if lock_type is None and isinstance(expr, ast.Call):
                lock_type = self.resolver.call_result_type(
                    expr, self.env, self.decl.class_name)
            if lock_type in THREADING_LOCK_TYPES and \
                    isinstance(statement, ast.With):
                self.facts.lock_withs.append(LockWith(
                    node=statement, label=label,
                    contains_await=_contains_await(statement)))
                self.facts.sites.append(CallSite(
                    node=statement, line=statement.lineno,
                    col=statement.col_offset, label=f"with {label}",
                    sinks=((BLOCKING,
                            f"{lock_type} acquisition (with {label})"),),
                    is_lock_with=True))
        self._visit_statements(statement.body,
                               held | frozenset(labels))

    # -- expression scanning --------------------------------------------------

    def _visit_expressions(self, statement: ast.stmt,
                           held: FrozenSet[str]) -> None:
        if isinstance(statement, (ast.Assign, ast.AugAssign)):
            targets = statement.targets if isinstance(statement, ast.Assign) \
                else [statement.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    self.facts.writes.append(AttrWrite(
                        node=statement, attr=target.attr, held=held))
        for field_name, value in ast.iter_fields(statement):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            nodes = value if isinstance(value, list) else [value]
            for node in nodes:
                if isinstance(node, ast.AST):
                    self._visit_expressions_node(node, held)

    def _visit_expressions_node(self, root: ast.AST,
                                held: FrozenSet[str]) -> None:
        for node in [root, *list(_own_statement_walk(root))]:
            if isinstance(node, ast.Call):
                self._visit_call(node)

    def _visit_call(self, node: ast.Call) -> None:
        resolver = self.resolver
        label = dotted_name(node.func) or "<call>"
        sinks: List[Tuple[str, str]] = []
        callees: List[str] = []
        spawned: List[Tuple[str, str]] = []

        canonical = resolver.index.imports.canonical(node.func)
        if canonical is not None:
            self._canonical_effects(node, canonical, sinks)
            scheduler = _CANONICAL_SCHEDULERS.get(canonical)
            if scheduler is not None:
                self._spawn(node, scheduler, sinks, spawned)

        if isinstance(node.func, ast.Name):
            name = node.func.id
            if canonical is None and name in BUILTIN_SINKS:
                sinks.append((next(iter(BUILTIN_SINKS[name])), name))
            elif canonical is None and name == "len" and node.args:
                arg_type = resolver.expr_type(node.args[0], self.env,
                                              self.decl.class_name)
                if arg_type is not None:
                    callees.extend(resolver.dispatch(arg_type, "__len__"))
            elif not sinks and not spawned:
                # Also reached when canonical named a *project* module
                # (``from util import f as g``): no stub matched, so the
                # call resolves through the project registry instead.
                callees.extend(resolver.resolve_name_call(name, self.decl))
        elif isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver_expr = node.func.value
            resolved = False
            if isinstance(receiver_expr, ast.Name) and \
                    receiver_expr.id in ("self", "cls") and \
                    self.decl.class_name is not None:
                callees.extend(resolver.dispatch(self.decl.class_name,
                                                 method))
                resolved = bool(callees)
            else:
                receiver = resolver.expr_type(receiver_expr, self.env,
                                              self.decl.class_name)
                if receiver is not None and \
                        receiver in resolver.graph.classes:
                    callees.extend(resolver.dispatch(receiver, method))
                    resolved = True
                elif canonical is None and method in _METHOD_SCHEDULERS:
                    # Scheduler shapes beat typed-receiver sinks: a
                    # ``loop.run_in_executor(None, f)`` call must record
                    # the executor escape even though ``loop``'s type is
                    # known (and has no sink entry of its own).
                    self._spawn(node, _METHOD_SCHEDULERS[method], sinks,
                                spawned)
                    resolved = True
                elif receiver is not None:
                    typed = TYPED_METHOD_SINKS.get((receiver, method))
                    if typed is not None:
                        for effect in sorted(typed):
                            sinks.append((effect, f"{receiver}.{method}"))
                    if receiver in ASYNCIO_PRIMITIVES:
                        self.facts.touches.append(PrimitiveTouch(
                            node=node, label=label, type_name=receiver))
                    resolved = True
                elif canonical is None:
                    head = dotted_name(receiver_expr)
                    if head is not None and \
                            resolver.classes_named(head.split(".")[-1]):
                        class_decl = resolver.classes_named(
                            head.split(".")[-1])[0]
                        callees.extend(resolver.dispatch(class_decl.name,
                                                         method))
                        resolved = True
            if not resolved and canonical is None:
                unique = resolver.project_methods.get(method, [])
                if len(unique) == 1 and \
                        method not in _UNIQUE_FALLBACK_EXCLUDE:
                    callees.extend(unique)
                elif method in NAME_METHOD_SINKS:
                    for effect in sorted(NAME_METHOD_SINKS[method]):
                        sinks.append((effect, f"<unknown>.{method}"))

        if sinks or callees or spawned:
            self.facts.sites.append(CallSite(
                node=node, line=node.lineno, col=node.col_offset,
                label=label, callees=tuple(dict.fromkeys(callees)),
                spawned=tuple(spawned), sinks=tuple(sinks)))

    def _canonical_effects(self, node: ast.Call, canonical: str,
                           sinks: List[Tuple[str, str]]) -> None:
        effects = CANONICAL_SINKS.get(canonical)
        if effects is not None:
            for effect in sorted(effects):
                sinks.append((effect, canonical))
            return
        if canonical in _NUMPY_SEEDED_FACTORIES:
            if not node.args and not node.keywords:
                sinks.append((NONDET, f"{canonical} (unseeded)"))
        elif canonical.startswith("numpy.random."):
            sinks.append((NONDET, canonical))
        elif canonical.startswith("random.") and \
                canonical != "random.Random":
            sinks.append((NONDET, canonical))

    def _spawn(self, node: ast.Call, scheduler: Tuple[str, int],
               sinks: List[Tuple[str, str]],
               spawned: List[Tuple[str, str]]) -> None:
        kind, position = scheduler
        sinks.append((_SCHEDULER_SPAWN_EFFECT[kind],
                      dotted_name(node.func) or kind))
        target: Optional[ast.AST] = None
        if position >= 0 and len(node.args) > position:
            target = node.args[position]
        else:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = keyword.value
                    break
            if target is None and position < 0 and len(node.args) > 1:
                target = node.args[1]
        if target is not None:
            for fid in self.resolver.resolve_func_ref(target, self.decl,
                                                      self.env):
                spawned.append((fid, kind))


# -- entry point --------------------------------------------------------------

def build_call_graph(modules: Sequence[Module]) -> CallGraph:
    """Index every module, infer types, and resolve every call site."""
    graph = CallGraph()
    indexes = [_ModuleIndex(module) for module in modules]
    for index in indexes:
        _index_module(index, graph)

    project_functions: Dict[str, List[str]] = {}
    project_methods: Dict[str, List[str]] = {}
    for fid, decl in graph.functions.items():
        if decl.class_name is not None:
            project_methods.setdefault(
                decl.qualname.split(".")[-1], []).append(fid)
        elif decl.enclosing is None:
            project_functions.setdefault(
                decl.qualname.split(".")[-1], []).append(fid)

    resolvers = [(_Resolver(index, graph, project_functions,
                            project_methods), index)
                 for index in indexes]
    _infer_class_attr_types(resolvers)

    by_rel = {index.rel: resolver for resolver, index in resolvers}
    for fid in sorted(graph.functions):
        decl = graph.functions[fid]
        resolver = by_rel[decl.module_rel]
        graph.facts[fid] = _BodyScanner(decl, resolver).scan()
    return graph


def call_closure(graph: CallGraph, roots: Set[str]) -> Set[str]:
    """Roots plus everything reachable from them over plain ``call`` edges.

    Spawn edges are excluded on purpose: a thread/process target runs on a
    different executor, so reachability facts that care about *who is on
    this stack* (event-loop blocking, per-cycle hotness, fast-mode
    guarantees) must not leak across them.
    """
    reached = set(roots)
    frontier = sorted(roots)
    while frontier:
        fid = frontier.pop()
        for callee, kind in graph.successors(fid):
            if kind == EDGE_CALL and callee in graph.functions and \
                    callee not in reached:
                reached.add(callee)
                frontier.append(callee)
    return reached


def fids_by_qualname(graph: CallGraph,
                     qualnames: Sequence[str]) -> Set[str]:
    """Functions whose qualified name matches one of ``qualnames`` exactly
    (any module) — the anchor for hot-region roots like ``Simulator.steps``."""
    wanted = set(qualnames)
    return {fid for fid, decl in graph.functions.items()
            if decl.qualname in wanted}
