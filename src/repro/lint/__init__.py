"""simlint: an AST-based determinism & simulator-correctness linter.

The sweep runner (DESIGN.md §8) promises bit-identical aggregate tables
across serial, parallel, and checkpoint-resumed executions.  That promise
is a *static* property of the code — it holds until someone introduces an
unseeded RNG draw, a wall-clock read, or a hash-ordered iteration into a
simulation path — so this package enforces it statically, with a small rule
engine over Python ASTs (see DESIGN.md §9 for the rule rationale and how to
add a rule).

Usage: ``python -m repro lint [paths]`` (the ``lint`` CLI subcommand).
"""

from .baseline import (
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from .engine import (
    ImportMap,
    LintEngine,
    LintError,
    LintReport,
    Module,
    ProjectRule,
    Rule,
    VisitorRule,
    all_rules,
    register,
    rule_catalog,
)
from .finding import Finding, Severity
from . import rules as _rules  # noqa: F401  (imports register the rule set)
from . import flowrules as _flowrules  # noqa: F401  (F1-F4)
from . import contracts as _contracts  # noqa: F401  (X1-X3)
from . import asyncrules as _asyncrules  # noqa: F401  (A1-A5)
from . import perfrules as _perfrules  # noqa: F401  (P1-P5)

__all__ = [
    "Finding",
    "ImportMap",
    "LintEngine",
    "LintError",
    "LintReport",
    "Module",
    "ProjectRule",
    "Rule",
    "Severity",
    "VisitorRule",
    "all_rules",
    "apply_baseline",
    "load_baseline",
    "register",
    "rule_catalog",
    "update_baseline",
    "write_baseline",
]
