"""Baseline files: acknowledged pre-existing findings that don't fail CI.

A baseline maps finding fingerprints (rule + path + message, no line
numbers) to occurrence counts.  Matching is count-aware: if the baseline
acknowledges two occurrences of a fingerprint and a run produces three,
the third is reported as new.  Fixing a baselined finding never breaks the
build — stale entries are reported separately so they can be pruned.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .engine import LintError
from .finding import Finding

_FORMAT_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise LintError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(data, dict) or "findings" not in data:
        raise LintError(f"baseline {path} is not a simlint baseline file")
    findings = data["findings"]
    if not isinstance(findings, dict):
        raise LintError(f"baseline {path}: 'findings' must be an object")
    return {str(fingerprint): int(count)
            for fingerprint, count in findings.items()}


def _write_counts(path: Path, counts: Dict[str, int]) -> None:
    payload = {
        "version": _FORMAT_VERSION,
        "comment": ("Acknowledged pre-existing simlint findings. "
                    "Regenerate with: python -m repro lint --write-baseline"),
        "findings": {fingerprint: counts[fingerprint]
                     for fingerprint in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist the fingerprints of ``findings`` as the new baseline."""
    counts = Counter(finding.fingerprint for finding in findings)
    _write_counts(path, dict(counts))


def update_baseline(path: Path,
                    findings: Sequence[Finding]) -> Dict[str, int]:
    """Regenerate an existing baseline in place, conservatively.

    The updated baseline is the *intersection* of the old baseline and the
    current findings: stale entries (fixed findings) are pruned, counts are
    lowered to what actually still occurs, and — crucially — findings not
    already acknowledged are **never** added.  ``--update-baseline`` is
    therefore always safe to run: it can only shrink the debt, unlike
    ``--write-baseline`` which acknowledges everything.

    Returns the counts that were written.
    """
    old = load_baseline(path)
    current = Counter(finding.fingerprint for finding in findings)
    updated = {fingerprint: min(count, current[fingerprint])
               for fingerprint, count in old.items()
               if current[fingerprint] > 0}
    _write_counts(path, updated)
    return updated


@dataclass
class BaselineResult:
    """Findings split against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Fingerprints in the baseline that no longer occur (prune candidates).
    stale: List[str] = field(default_factory=list)


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[str, int]) -> BaselineResult:
    """Split ``findings`` into new vs. baseline-acknowledged occurrences."""
    remaining = Counter(baseline)
    outcome = BaselineResult()
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            outcome.baselined.append(finding)
        else:
            outcome.new.append(finding)
    outcome.stale = sorted(fingerprint
                           for fingerprint, count in remaining.items()
                           if count > 0)
    return outcome
