"""Fixpoint effect inference over the project call graph.

Four effect lattices (each just "absent < present") are propagated
bottom-up over the condensation of the call graph:

- ``blocking`` — the function may perform blocking I/O, sleep, wait on a
  subprocess/queue, or acquire a threading lock;
- ``spawns-thread`` / ``spawns-process`` — the function may start a
  thread (or hand work to an executor) / a process;
- ``nondet`` — the function may consult unseeded RNG or the wall clock
  (the interprocedural generalization of rules D1/D3).

Propagation is edge-kind aware: ``blocking`` and the spawn effects travel
only over ordinary ``call`` edges — handing a blocking function to
``run_in_executor`` or a ``Thread`` does **not** make the *caller*
blocking (that is exactly the sanctioned A1 fix) — while ``nondet``
travels over every edge kind, because a nondeterministic thread target
still makes the spawning computation nondeterministic.

Strongly connected components are found with an iterative Tarjan (no
recursion-depth hazard on deep call chains) which conveniently emits
SCCs in reverse topological order — callees before callers — so a single
pass with a per-SCC inner fixpoint reaches the global fixpoint.  Mutual
recursion therefore terminates trivially: each SCC's inner loop adds at
most ``len(EFFECTS) * len(scc)`` facts before it stabilizes.

Every inferred effect carries a :class:`Witness` — which call site
introduced it and via which callee — so rules can render a full
call-chain trace down to the concrete sink (`chain`), the evidence the
A-rule findings attach for humans.  Witnesses are assigned
first-wins over a deterministic (sorted-fid, source-order) iteration, so
traces are stable run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import (
    BLOCKING,
    EDGE_CALL,
    EFFECTS,
    NONDET,
    SPAWNS_PROCESS,
    SPAWNS_THREAD,
    CallGraph,
)

#: Which effects cross which edge kinds (absent kind -> nondet only).
_CALL_EDGE_EFFECTS = frozenset(EFFECTS)
_SPAWN_EDGE_EFFECTS = frozenset((NONDET,))


@dataclass(frozen=True)
class Witness:
    """Why a function has an effect: the introducing site and next hop."""

    effect: str
    path: str            # module rel of the witnessing call site
    line: int
    label: str           # rendered call expression at the site
    sink: str            # the ultimate concrete sink description
    via: Optional[str]   # callee fid carrying the effect; None = direct sink


class EffectAnalysis:
    """Queryable result of the fixpoint: ``has``, ``witness``, ``chain``."""

    def __init__(self, graph: CallGraph,
                 effects: Dict[str, Dict[str, Witness]]) -> None:
        self.graph = graph
        self._effects = effects

    def has(self, fid: str, effect: str) -> bool:
        return effect in self._effects.get(fid, {})

    def witness(self, fid: str, effect: str) -> Optional[Witness]:
        return self._effects.get(fid, {}).get(effect)

    def sink(self, fid: str, effect: str) -> Optional[str]:
        witness = self.witness(fid, effect)
        return witness.sink if witness is not None else None

    def chain(self, fid: str, effect: str) -> Tuple[str, ...]:
        """Human-readable call chain from ``fid`` down to the sink.

        Each step reads ``qualname (path:line) -> next``; the final step
        names the concrete sink.  Cycles (mutual recursion) are cut at
        the first revisit.
        """
        steps: List[str] = []
        seen: Set[str] = set()
        current: Optional[str] = fid
        while current is not None and current not in seen:
            seen.add(current)
            witness = self.witness(current, effect)
            decl = self.graph.functions.get(current)
            if witness is None or decl is None:
                break
            if witness.via is None or witness.via in seen or \
                    witness.via not in self.graph.functions:
                steps.append(f"{decl.qualname} ({witness.path}:"
                             f"{witness.line}) -> {witness.sink}")
                break
            nxt = self.graph.functions[witness.via]
            steps.append(f"{decl.qualname} ({witness.path}:"
                         f"{witness.line}) -> {nxt.qualname}")
            current = witness.via
        return tuple(steps)


def _tarjan_sccs(graph: CallGraph) -> List[List[str]]:
    """Iterative Tarjan; SCCs come out callees-first (reverse topological)."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    successors: Dict[str, List[str]] = {
        fid: sorted({callee for callee, _kind in graph.successors(fid)
                     if callee in graph.functions})
        for fid in graph.functions}

    for root in sorted(graph.functions):
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors[node]
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def analyze_effects(graph: CallGraph) -> EffectAnalysis:
    """Run the bottom-up fixpoint and return the queryable analysis."""
    effects: Dict[str, Dict[str, Witness]] = {
        fid: {} for fid in graph.functions}

    def absorb(fid: str) -> bool:
        """One transfer-function application; True if anything was added."""
        changed = False
        mine = effects[fid]
        facts = graph.facts[fid]
        for site in facts.sites:
            for effect, sink in site.sinks:
                if effect not in mine:
                    mine[effect] = Witness(
                        effect=effect, path=facts.decl.module_rel,
                        line=site.line, label=site.label, sink=sink,
                        via=None)
                    changed = True
            for callee in site.callees:
                callee_effects = effects.get(callee)
                if callee_effects is None:
                    continue
                for effect in EFFECTS:
                    if effect in mine or effect not in callee_effects:
                        continue
                    mine[effect] = Witness(
                        effect=effect, path=facts.decl.module_rel,
                        line=site.line, label=site.label,
                        sink=callee_effects[effect].sink, via=callee)
                    changed = True
            for target, _kind in site.spawned:
                target_effects = effects.get(target)
                if target_effects is None:
                    continue
                for effect in _SPAWN_EDGE_EFFECTS:
                    if effect in mine or effect not in target_effects:
                        continue
                    mine[effect] = Witness(
                        effect=effect, path=facts.decl.module_rel,
                        line=site.line, label=site.label,
                        sink=target_effects[effect].sink, via=target)
                    changed = True
        return changed

    for scc in _tarjan_sccs(graph):
        while True:
            changed = False
            for fid in scc:
                if absorb(fid):
                    changed = True
            if not changed:
                break
    return EffectAnalysis(graph, effects)
