"""Finding and severity primitives for the simlint static analyzer.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: the engine produces them, the CLI renders them, and the
baseline machinery matches them by a *fingerprint* that deliberately omits
line/column so that unrelated edits (which shift lines) neither hide nor
resurrect baselined findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Tuple


class Severity(enum.Enum):
    """How bad a finding is; CI fails on both levels by default."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``chain`` is an optional call-chain trace (outermost caller first, the
    concrete sink last) attached by the interprocedural A-rules so a reader
    can see *why* e.g. an ``async def`` is considered blocking.  It is
    evidence, not identity: the fingerprint deliberately excludes it, the
    same way it excludes line numbers, so refactors that reroute a chain
    without fixing the effect neither hide nor duplicate baselined findings.
    """

    rule: str
    path: str          # posix-style path relative to the lint root
    line: int          # 1-based
    col: int           # 0-based, as reported by the ast module
    message: str
    severity: Severity = Severity.ERROR
    chain: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Line-insensitive identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    def sort_key(self) -> Tuple[str, int, str, int]:
        """Stable report/baseline order: path, then line, then rule id (the
        column only breaks ties so same-line findings stay deterministic)."""
        return (self.path, self.line, self.rule, self.col)

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value}: {self.message} [{self.rule}]")
        for step in self.chain:
            text += f"\n    {step}"
        return text

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (the incremental cache round-trips
        findings through JSON)."""
        return cls(rule=payload["rule"], path=payload["path"],
                   line=payload["line"], col=payload["col"],
                   message=payload["message"],
                   severity=Severity(payload["severity"]),
                   chain=tuple(payload.get("chain", ())))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        return payload
