"""Hot-loop performance rules (the P family).

PR 8 bought its 3×+ fast-mode speedup with a handful of mechanical Python
disciplines — hoist loop-invariant attribute/global loads to locals, never
allocate per cycle, test membership against sets, keep the telemetry hub
behind a ``None`` guard.  Nothing *enforced* them: one careless edit in a
per-cycle loop silently erodes the win until the bench gate trips, long
after the offending commit.  These rules make the disciplines mechanical.

A *hot region* is a statement loop that is either

- lexically inside one of the simulator packages that execute per cycle or
  per uop (``core/``, ``uopcache/``, ``frontend/``, ``backend/``,
  ``caches/``, ``branch/``), or
- inside a function transitively reachable from a per-cycle root
  (``Simulator.steps``, ``FastPath.run``) over plain call edges of the
  PR 7 call graph — wherever that function lives.

Loop-invariance is proved with the PR 5 dataflow engine: a load is
invariant when every reaching definition of its root name lies outside the
loop and nothing inside the loop stores to any prefix of the chain.

Rules:

- **P1** — loop-invariant container/closure allocation inside a hot loop.
- **P2** — loop-invariant attribute or global load not hoisted to a local.
- **P3** — ``in``-membership against a list/tuple inside a hot loop.
- **P4** — repeated subscript with an invariant base and key.
- **P5** — a telemetry-hub method call in fast-mode-reachable code that is
  not dominated by a ``None``/truthiness guard (the PR 8 bit-identity
  contract: fast mode runs with no hub at all).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .asyncrules import AsyncAnalysis, AsyncRule, build_async_analysis
from .callgraph import EDGE_CALL, CallGraph, call_closure, fids_by_qualname
from .cfg import LoopNest, iter_loop_exprs, loop_nests
from .engine import Module, ProjectContext, ProjectRule, dotted_name, register
from .finding import Finding, Severity
from .flowrules import FunctionInfo, function_infos

#: Packages whose loops are hot by construction (they execute per cycle or
#: per uop in every simulation).
HOT_PACKAGES = ("repro/core", "repro/uopcache", "repro/frontend",
                "repro/backend", "repro/caches", "repro/branch")

#: Qualified names of the per-cycle entry points; everything they reach
#: over call edges is hot no matter which package it lives in.
HOT_ROOT_QUALNAMES = ("Simulator.steps", "FastPath.run")

#: Entry points of the counters-only fast path (P5's reachability root).
FAST_ROOT_QUALNAMES = ("FastPath.run",)

#: TelemetryHub methods whose receiver may legally be ``None`` in fast mode.
_HUB_METHODS = frozenset({"emit", "wants", "summary", "add_sink", "close"})

#: Receiver spellings that identify a telemetry hub without type inference.
_HUB_NAME_HINTS = frozenset({"telemetry", "_telemetry", "tel", "hub", "_hub"})

_BUILTIN_NAMES = frozenset(dir(builtins))

_HOT_MODEL_KEY = "perf:hot-model"
_SCAN_KEY = "perf:findings"


def module_in_hot_package(rel: str) -> bool:
    """Whether a module path sits inside one of the hot packages."""
    haystack = f"/{rel}"
    return any(f"/{fragment}/" in haystack for fragment in HOT_PACKAGES)


# -- shared hot-region model --------------------------------------------------

@dataclass
class HotModel:
    """Whole-program hotness facts, built once per engine run."""

    graph: CallGraph
    #: Functions reachable from a per-cycle root over call edges.
    hot_fids: Set[str] = field(default_factory=set)
    #: Functions reachable from the fast-mode serve loop (P5's domain).
    fast_fids: Set[str] = field(default_factory=set)
    #: BFS parent of each fast fid, for rendering evidence chains.
    fast_parent: Dict[str, Optional[str]] = field(default_factory=dict)
    #: ``id(function AST node) -> fid`` so per-module scans can look up a
    #: function's hotness without re-deriving qualified names.
    fid_by_node: Dict[int, str] = field(default_factory=dict)

    def function_is_hot(self, info: FunctionInfo, package_hot: bool) -> bool:
        if package_hot:
            return True
        fid = self.fid_by_node.get(id(info.func))
        return fid is not None and fid in self.hot_fids


class PerfRule(ProjectRule):
    """Base for the P family: shares the hot model across all five rules."""

    severity = Severity.WARNING
    scope = None

    def model(self, modules: Sequence[Module]) -> HotModel:
        if self.context is None:
            return _build_hot_model(modules)
        cached = self.context.cache.get(_HOT_MODEL_KEY)
        if cached is None:
            cached = _build_hot_model(self.context.modules, self.context)
            self.context.cache[_HOT_MODEL_KEY] = cached
        model: HotModel = cached
        return model


def _shared_analysis(modules: Sequence[Module],
                     context: Optional[ProjectContext]) -> AsyncAnalysis:
    """The A rules' graph+effects artifact, built once per engine run."""
    if context is None:
        return build_async_analysis(modules)
    cached = context.cache.get(AsyncRule._CACHE_KEY)
    if cached is None:
        cached = build_async_analysis(context.modules)
        context.cache[AsyncRule._CACHE_KEY] = cached
    analysis: AsyncAnalysis = cached
    return analysis


def _build_hot_model(modules: Sequence[Module],
                     context: Optional[ProjectContext] = None) -> HotModel:
    graph = _shared_analysis(modules, context).graph
    model = HotModel(graph=graph)
    model.hot_fids = call_closure(
        graph, fids_by_qualname(graph, HOT_ROOT_QUALNAMES))
    fast_roots = fids_by_qualname(graph, FAST_ROOT_QUALNAMES)
    model.fast_parent = {fid: None for fid in fast_roots}
    frontier = sorted(fast_roots)
    while frontier:
        fid = frontier.pop(0)
        for callee, kind in graph.successors(fid):
            if kind == EDGE_CALL and callee in graph.functions and \
                    callee not in model.fast_parent:
                model.fast_parent[callee] = fid
                frontier.append(callee)
    model.fast_fids = set(model.fast_parent)
    model.fid_by_node = {id(decl.node): fid
                         for fid, decl in graph.functions.items()}
    return model


# -- per-loop region scan -----------------------------------------------------

@dataclass
class _LoopFacts:
    """Everything one hot loop's per-iteration region contains."""

    #: maximal pure attribute chains loaded per iteration, by chain text.
    chains: Dict[str, List[ast.Attribute]] = field(default_factory=dict)
    #: chains loaded at least once as a *value* (not only as a call head).
    #: A bound-method prebind survives object mutation; a cached value does
    #: not, so value loads need a stricter proof.
    value_loaded: Set[str] = field(default_factory=set)
    #: bare name loads per iteration, by name.
    names: Dict[str, List[ast.Name]] = field(default_factory=dict)
    #: (node, human description, names shadowed at the site) of allocation
    #: expressions.  Shadowed names (comprehension targets) vary per
    #: iteration of their comprehension, so an allocation reading one is
    #: never invariant.
    allocs: List[Tuple[ast.AST, str, FrozenSet[str]]] = \
        field(default_factory=list)
    #: (compare node, container expression) of ``in``/``not in`` tests.
    members: List[Tuple[ast.Compare, ast.expr]] = field(default_factory=list)
    #: subscript loads with a pure base chain and a simple key.
    subscripts: Dict[Tuple[str, str], List[ast.Subscript]] = \
        field(default_factory=dict)
    #: attribute chains stored anywhere inside the loop.
    attr_stores: Set[str] = field(default_factory=set)
    #: base chains of subscript stores (``d[k] = v``) inside the loop.
    subscript_store_bases: Set[str] = field(default_factory=set)
    #: receivers of method calls inside the loop (may be mutated by them).
    method_receivers: Set[str] = field(default_factory=set)


_ALLOC_DISPLAYS = ((ast.List, "list literal"), (ast.Tuple, "tuple literal"),
                   (ast.Set, "set literal"), (ast.Dict, "dict literal"))
_ALLOC_COMPS = ((ast.ListComp, "list comprehension"),
                (ast.SetComp, "set comprehension"),
                (ast.DictComp, "dict comprehension"),
                (ast.GeneratorExp, "generator expression"))


class _RegionScanner:
    """Collects :class:`_LoopFacts` from one loop's per-iteration region.

    Comprehension targets and lambda parameters shadow outer names, so a
    shadow stack keeps their loads out of the invariance bookkeeping (a
    shadowed root can never be proved invariant by the function's def-use
    chains — it is not a function local at all).
    """

    def __init__(self, facts: _LoopFacts) -> None:
        self.facts = facts
        self._shadow: List[Set[str]] = []

    def _shadowed(self, name: str) -> bool:
        return any(name in layer for layer in self._shadow)

    def _alloc(self, node: ast.AST, description: str) -> None:
        shadowed = frozenset().union(*self._shadow) if self._shadow \
            else frozenset()
        self.facts.allocs.append((node, description, shadowed))

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.ctx, ast.Load):
            chain = dotted_name(node.func)
            if chain is not None:
                # Record the callee chain as a call head only; the
                # arguments are scanned normally.
                if not self._shadowed(chain.split(".", 1)[0]):
                    self.facts.chains.setdefault(chain, []).append(node.func)
                for argument in node.args:
                    self.visit(argument)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                return
            self._generic(node)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                chain = dotted_name(node)
                if chain is not None and \
                        not self._shadowed(chain.split(".", 1)[0]):
                    self.facts.chains.setdefault(chain, []).append(node)
                    self.facts.value_loaded.add(chain)
                if chain is not None:
                    return      # a pure chain has nothing else beneath it
            self._generic(node)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and not self._shadowed(node.id):
                self.facts.names.setdefault(node.id, []).append(node)
            return
        if isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load):
                base = dotted_name(node.value)
                key = _key_repr(node.slice)
                if base is not None and key is not None and \
                        not self._shadowed(base.split(".", 1)[0]):
                    self.facts.subscripts.setdefault(
                        (base, key), []).append(node)
            self._generic(node)
            return
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    self.facts.members.append((node, comparator))
            self._generic(node)
            return
        if isinstance(node, ast.Lambda):
            self._alloc(node, "lambda")
            for default in list(node.args.defaults) + \
                    [d for d in node.args.kw_defaults if d is not None]:
                self.visit(default)
            return                      # the body does not run per iteration
        for comp_type, description in _ALLOC_COMPS:
            if isinstance(node, comp_type):
                self._alloc(node, description)
                self._visit_comprehension(node)
                return
        for display_type, description in _ALLOC_DISPLAYS:
            if isinstance(node, display_type) and \
                    isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
                elements = node.keys if isinstance(node, ast.Dict) \
                    else node.elts
                if elements:
                    self._alloc(node, description)
                break
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._alloc(node, f"nested function '{node.name}'")
            for decorator in node.decorator_list:
                self.visit(decorator)
            for default in list(node.args.defaults) + \
                    [d for d in node.args.kw_defaults if d is not None]:
                self.visit(default)
            return
        self._generic(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        generators: Sequence[ast.comprehension] = node.generators
        self.visit(generators[0].iter)
        bound: Set[str] = set()
        for generator in generators:
            for name_node in ast.walk(generator.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        self._shadow.append(bound)
        for index, generator in enumerate(generators):
            if index > 0:
                self.visit(generator.iter)
            for condition in generator.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._shadow.pop()

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword, ast.Starred)):
                self.visit(child)
            elif isinstance(child, ast.AST) and not isinstance(
                    child, (ast.expr_context, ast.operator, ast.cmpop,
                            ast.boolop, ast.unaryop)):
                self.visit(child)


def _key_repr(key: ast.expr) -> Optional[str]:
    """A stable rendering of a subscript key, or None if it is not simple."""
    if isinstance(key, ast.Constant):
        return repr(key.value)
    if isinstance(key, ast.Name) and isinstance(key.ctx, ast.Load):
        return key.id
    return None


def _collect_loop_facts(loop: LoopNest) -> _LoopFacts:
    facts = _LoopFacts()
    for node in ast.walk(loop.node):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            chain = dotted_name(node)
            if chain is not None:
                facts.attr_stores.add(chain)
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            base = dotted_name(node.value)
            if base is not None:
                facts.subscript_store_bases.add(base)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value)
            if receiver is not None:
                facts.method_receivers.add(receiver)
    scanner = _RegionScanner(facts)
    for expr in iter_loop_exprs(loop.node):
        scanner.visit(expr)
    return facts


# -- invariance proofs --------------------------------------------------------

class _Invariance:
    """Reaching-definitions-based loop-invariance queries for one function."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.def_use = info.def_use()
        self.scope = info.scope

    def name_invariant(self, name_node: ast.Name, loop: LoopNest) -> bool:
        """All reaching definitions of this load lie outside the loop."""
        reaching = self.def_use.defs_of_use.get(id(name_node))
        if reaching is None:
            # Not a function local: a global or builtin.  Invariant unless
            # the function rebinds it through a ``global`` declaration.
            return name_node.id not in self.scope.globals_declared
        definitions = self.def_use.definitions
        return all(not loop.contains(definitions[def_id].node)
                   for def_id in reaching)

    def chain_invariant(self, nodes: Sequence[ast.Attribute], chain: str,
                        loop: LoopNest, facts: _LoopFacts) -> bool:
        if _chain_prefix_stored(chain, facts.attr_stores):
            return False
        for node in nodes:
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if not isinstance(root, ast.Name) or \
                    not self.name_invariant(root, loop):
                return False
        return True


def _chain_prefix_stored(chain: str, stores: Set[str]) -> bool:
    return any(chain == stored or chain.startswith(f"{stored}.")
               for stored in stores)


def _owner_method_called(chain: str, receivers: Set[str]) -> bool:
    """A method call on a *proper* prefix of ``chain`` may rebind the
    attribute the chain reads (e.g. ``self.step()`` bumping
    ``self.count``), so a cached value would go stale."""
    return any(chain != receiver and chain.startswith(f"{receiver}.")
               for receiver in receivers)


def _module_top_level(tree: ast.Module) -> Tuple[Set[str],
                                                 Dict[str, ast.expr]]:
    """Names defined at module top level, and their assigned value nodes."""
    names: Set[str] = set()
    values: Dict[str, ast.expr] = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name) and \
                            isinstance(node.ctx, ast.Store):
                        names.add(node.id)
                if isinstance(target, ast.Name):
                    values[target.id] = statement.value
        elif isinstance(statement, ast.AnnAssign) and \
                isinstance(statement.target, ast.Name):
            names.add(statement.target.id)
            if statement.value is not None:
                values[statement.target.id] = statement.value
        elif isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
            names.add(statement.name)
    return names, values


def _is_sequence_build(value: ast.expr) -> Optional[str]:
    """'list'/'tuple' if the expression builds one, else None."""
    if isinstance(value, ast.List) or isinstance(value, ast.ListComp):
        return "list"
    if isinstance(value, ast.Tuple):
        return "tuple"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) and \
            value.func.id in ("list", "tuple") and not value.keywords:
        return value.func.id
    return None


# -- the per-module scan (shared by P1-P4) ------------------------------------

def _module_perf_findings(module: Module,
                          model: HotModel) -> Dict[str, List[Finding]]:
    cached = module.analysis_cache.get(_SCAN_KEY)
    if cached is None:
        cached = _scan_module(module, model)
        module.analysis_cache[_SCAN_KEY] = cached
    findings: Dict[str, List[Finding]] = cached
    return findings


def _scan_module(module: Module,
                 model: HotModel) -> Dict[str, List[Finding]]:
    out: Dict[str, List[Finding]] = {"P1": [], "P2": [], "P3": [], "P4": []}
    package_hot = module_in_hot_package(module.rel)
    global_names, global_values = _module_top_level(module.tree)
    for info in function_infos(module):
        if not model.function_is_hot(info, package_hot):
            continue
        invariance = _Invariance(info)
        for loop in loop_nests(info.func):
            facts = _collect_loop_facts(loop)
            _check_loop(module, loop, facts, invariance,
                        global_names, global_values, out)
    return out


def _finding(rule: str, module: Module, node: ast.AST, message: str
             ) -> Finding:
    return Finding(rule=rule, path=module.rel,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0),
                   message=message, severity=Severity.WARNING)


def _check_loop(module: Module, loop: LoopNest, facts: _LoopFacts,
                invariance: _Invariance, global_names: Set[str],
                global_values: Dict[str, ast.expr],
                out: Dict[str, List[Finding]]) -> None:
    # P4 first: its findings subsume same-base P2 chain findings.
    p4_bases: Set[str] = set()
    for (base, key), nodes in sorted(facts.subscripts.items()):
        if len(nodes) < 2:
            continue
        if base in facts.subscript_store_bases or \
                base in facts.method_receivers or \
                _owner_method_called(base, facts.method_receivers):
            continue
        if not _base_invariant(base, nodes, invariance, loop, facts):
            continue
        if not _subscript_key_invariant(nodes, invariance, loop):
            continue
        first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
        out["P4"].append(_finding(
            "P4", module, first,
            f"'{base}[{key}]' indexed {len(nodes)} times with a "
            "loop-invariant key inside a hot loop; bind it to a local "
            "before the loop"))
        p4_bases.add(base)

    # P2: invariant attribute chains (and bare globals) loaded per iteration.
    for chain, nodes in sorted(facts.chains.items()):
        if chain in p4_bases:
            continue
        if len(nodes) < 2 and loop.depth < 2:
            continue
        if chain in facts.value_loaded and \
                _owner_method_called(chain, facts.method_receivers):
            continue
        if not invariance.chain_invariant(nodes, chain, loop, facts):
            continue
        first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
        out["P2"].append(_finding(
            "P2", module, first,
            f"loop-invariant attribute load '{chain}' inside a hot loop; "
            "hoist it to a local before the loop"))
    for name, nodes in sorted(facts.names.items()):
        if len(nodes) < 2 or name in _BUILTIN_NAMES:
            continue
        if name not in global_names or name in invariance.scope.local_names \
                or name in invariance.scope.globals_declared:
            continue
        first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
        out["P2"].append(_finding(
            "P2", module, first,
            f"loop-invariant global load '{name}' inside a hot loop; "
            "bind it to a local before the loop"))

    # P3: membership against list/tuple containers.
    for compare, container in facts.members:
        if isinstance(container, (ast.List, ast.Tuple)) and container.elts:
            kind = "list" if isinstance(container, ast.List) else "tuple"
            out["P3"].append(_finding(
                "P3", module, compare,
                f"membership test against a {kind} literal inside a hot "
                "loop; use a set or frozenset literal"))
            continue
        if not isinstance(container, ast.Name) or \
                not isinstance(container.ctx, ast.Load):
            continue
        name = container.id
        if name in facts.subscript_store_bases or \
                name in facts.method_receivers:
            continue
        build = _container_build_kind(container, invariance, loop,
                                      global_values)
        if build is None:
            continue
        out["P3"].append(_finding(
            "P3", module, compare,
            f"membership test against '{name}', which is built as a "
            f"{build}, inside a hot loop; build it as a set/frozenset for "
            "O(1) lookups"))

    # P1: loop-invariant allocations.  Membership comparators belong to
    # P3, and CPython's peephole folds all-constant tuple displays into
    # code-object constants, so neither is a per-iteration allocation.
    comparators = {id(container) for _, container in facts.members}
    for node, description, shadowed in facts.allocs:
        if id(node) in comparators or _constant_folded(node):
            continue
        if not _alloc_invariant(node, invariance, loop, shadowed, facts):
            continue
        out["P1"].append(_finding(
            "P1", module, node,
            f"loop-invariant {description} allocated on every iteration "
            "of a hot loop; build it once before the loop"))


def _base_invariant(base: str, nodes: Sequence[ast.Subscript],
                    invariance: _Invariance, loop: LoopNest,
                    facts: _LoopFacts) -> bool:
    if _chain_prefix_stored(base, facts.attr_stores):
        return False
    for node in nodes:
        root = node.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if not isinstance(root, ast.Name) or \
                not invariance.name_invariant(root, loop):
            return False
    return True


def _subscript_key_invariant(nodes: Sequence[ast.Subscript],
                             invariance: _Invariance,
                             loop: LoopNest) -> bool:
    for node in nodes:
        key = node.slice
        if isinstance(key, ast.Constant):
            continue
        if isinstance(key, ast.Name) and \
                invariance.name_invariant(key, loop):
            continue
        return False
    return True


def _container_build_kind(container: ast.Name, invariance: _Invariance,
                          loop: LoopNest,
                          global_values: Dict[str, ast.expr]
                          ) -> Optional[str]:
    reaching = invariance.def_use.defs_of_use.get(id(container))
    if reaching is None:
        value = global_values.get(container.id)
        return _is_sequence_build(value) if value is not None else None
    if not reaching:
        return None
    kinds: Set[str] = set()
    definitions = invariance.def_use.definitions
    for def_id in reaching:
        definition = definitions[def_id]
        if loop.contains(definition.node):
            return None
        element = definition.element
        if element is None or not isinstance(element.node, ast.Assign):
            return None
        kind = _is_sequence_build(element.node.value)
        if kind is None:
            return None
        kinds.add(kind)
    return kinds.pop() if len(kinds) == 1 else "list/tuple"


def _constant_folded(node: ast.AST) -> bool:
    return isinstance(node, ast.Tuple) and bool(node.elts) and \
        all(isinstance(elt, ast.Constant) for elt in node.elts)


def _alloc_invariant(node: ast.AST, invariance: _Invariance,
                     loop: LoopNest,
                     shadowed: FrozenSet[str],
                     facts: _LoopFacts) -> bool:
    scanner = _FreeLoadScanner()
    scanner.visit_node(node)
    for chain in scanner.attr_chains:
        # An attribute value read while building the allocation: a store
        # through any prefix, or a method call on a proper prefix, can
        # change it between iterations.
        if _chain_prefix_stored(chain, facts.attr_stores) or \
                _owner_method_called(chain, facts.method_receivers):
            return False
    for load in scanner.loads:
        if load.id in shadowed:
            return False        # reads a comprehension target: per-item
        reaching = invariance.def_use.defs_of_use.get(id(load))
        if reaching is None:
            if load.id in invariance.scope.local_names:
                # A local load the def-use pass never saw (e.g. inside a
                # nested scope): assume variant rather than misreport.
                return False
            if load.id in invariance.scope.globals_declared:
                return False
            continue
        definitions = invariance.def_use.definitions
        if any(loop.contains(definitions[def_id].node)
               for def_id in reaching):
            return False
    return True


class _FreeLoadScanner:
    """Name loads an allocation expression evaluates, nested scopes and
    comprehension targets excluded (mirrors the dataflow name scanner)."""

    def __init__(self) -> None:
        self.loads: List[ast.Name] = []
        self.attr_chains: Set[str] = set()
        self._shadow: List[Set[str]] = []

    def _shadowed(self, name: str) -> bool:
        return any(name in layer for layer in self._shadow)

    def visit_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and \
                    not self._shadowed(node.id):
                self.loads.append(node)
            return
        if isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            chain = dotted_name(node)
            if chain is not None and \
                    not self._shadowed(chain.split(".", 1)[0]):
                self.attr_chains.add(chain)
        if isinstance(node, ast.Lambda):
            for default in list(node.args.defaults) + \
                    [d for d in node.args.kw_defaults if d is not None]:
                self.visit_node(default)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                self.visit_node(decorator)
            for default in list(node.args.defaults) + \
                    [d for d in node.args.kw_defaults if d is not None]:
                self.visit_node(default)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            generators: Sequence[ast.comprehension] = node.generators
            self.visit_node(generators[0].iter)
            bound: Set[str] = set()
            for generator in generators:
                for name_node in ast.walk(generator.target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
            self._shadow.append(bound)
            for index, generator in enumerate(generators):
                if index > 0:
                    self.visit_node(generator.iter)
                for condition in generator.ifs:
                    self.visit_node(condition)
            if isinstance(node, ast.DictComp):
                self.visit_node(node.key)
                self.visit_node(node.value)
            else:
                self.visit_node(node.elt)
            self._shadow.pop()
            return
        for child in ast.iter_child_nodes(node):
            self.visit_node(child)


# -- rule classes -------------------------------------------------------------

class _LoopPerfRule(PerfRule):
    """Shared driver for P1-P4 (one scan per module feeds all four)."""

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        model = self.model(modules)
        findings: List[Finding] = []
        for module in modules:
            findings.extend(_module_perf_findings(module, model)[self.id])
        return findings


@register
class P1HotLoopAllocation(_LoopPerfRule):
    id = "P1"
    title = "Loop-invariant allocation inside a hot loop"
    rationale = ("Containers, comprehensions and closures allocated per "
                 "cycle dominate Python-level simulation cost; an "
                 "allocation whose free names are all loop-invariant can "
                 "be built once before the loop.")


@register
class P2UnhoistedInvariantLoad(_LoopPerfRule):
    id = "P2"
    title = "Loop-invariant attribute/global load not hoisted to a local"
    rationale = ("Attribute chains and module globals are re-resolved on "
                 "every load; reaching definitions prove the value cannot "
                 "change inside the loop, so a local alias is free "
                 "speedup with identical counters.")


@register
class P3LinearMembershipInHotLoop(_LoopPerfRule):
    id = "P3"
    title = "Membership test against a list/tuple inside a hot loop"
    rationale = ("`x in <list/tuple>` is a linear scan per iteration; a "
                 "set or frozenset built once makes it O(1) without "
                 "changing results.")


@register
class P4RepeatedInvariantIndexing(_LoopPerfRule):
    id = "P4"
    title = "Repeated subscript with an invariant base and key"
    rationale = ("Indexing the same container with the same invariant key "
                 "several times per iteration repeats hash/bounds work the "
                 "first lookup already paid for; bind the element to a "
                 "local.")


# -- P5: telemetry guards in fast-mode-reachable code -------------------------

def _guard_facts(test: ast.expr) -> Tuple[Set[str], Set[str]]:
    """Chains proved non-None when ``test`` is true / false."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
            len(test.comparators) == 1:
        left = dotted_name(test.left)
        comparator = test.comparators[0]
        if left is not None and isinstance(comparator, ast.Constant) and \
                comparator.value is None:
            if isinstance(test.ops[0], ast.IsNot):
                return {left}, set()
            if isinstance(test.ops[0], ast.Is):
                return set(), {left}
        return set(), set()
    chain = dotted_name(test)
    if chain is not None:
        return {chain}, set()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        positive, negative = _guard_facts(test.operand)
        return negative, positive
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And):
            positive = set()
            for value in test.values:
                positive |= _guard_facts(value)[0]
            return positive, set()
        negative = set()
        for value in test.values:
            negative |= _guard_facts(value)[1]
        return set(), negative
    return set(), set()


def _always_exits(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _GuardWalker:
    """Finds hub method calls not dominated by a ``None``/truthiness check."""

    def __init__(self, is_hub_call: Callable[[ast.Call], Optional[str]],
                 report: Callable[[ast.Call, str], None]) -> None:
        self.is_hub_call = is_hub_call
        self.report = report

    def walk(self, statements: Sequence[ast.stmt],
             guarded: FrozenSet[str]) -> None:
        current = set(guarded)
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, ast.If):
                self.check_expr(statement.test, frozenset(current))
                positive, negative = _guard_facts(statement.test)
                self.walk(statement.body, frozenset(current | positive))
                self.walk(statement.orelse, frozenset(current | negative))
                if not statement.orelse and _always_exits(statement.body):
                    current |= negative
                elif _always_exits(statement.orelse):
                    current |= positive
                continue
            if isinstance(statement, ast.While):
                self.check_expr(statement.test, frozenset(current))
                positive, _ = _guard_facts(statement.test)
                self.walk(statement.body, frozenset(current | positive))
                self.walk(statement.orelse, frozenset(current))
                continue
            if isinstance(statement, (ast.For, ast.AsyncFor)):
                self.check_expr(statement.iter, frozenset(current))
                self.walk(statement.body, frozenset(current))
                self.walk(statement.orelse, frozenset(current))
                continue
            if isinstance(statement, ast.Try):
                self.walk(statement.body, frozenset(current))
                for handler in statement.handlers:
                    self.walk(handler.body, frozenset(current))
                self.walk(statement.orelse, frozenset(current))
                self.walk(statement.finalbody, frozenset(current))
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    self.check_expr(item.context_expr, frozenset(current))
                self.walk(statement.body, frozenset(current))
                continue
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self.check_expr(child, frozenset(current))
            # Storing to a guarded chain invalidates its guarantee.
            for target in ast.walk(statement):
                if isinstance(target, (ast.Attribute, ast.Name)) and \
                        isinstance(getattr(target, "ctx", None),
                                   (ast.Store, ast.Del)):
                    stored = dotted_name(target)
                    if stored is not None:
                        current = {chain for chain in current
                                   if chain != stored and
                                   not chain.startswith(f"{stored}.")}

    def check_expr(self, expr: ast.AST,
                   guarded: FrozenSet[str]) -> None:
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            accumulated = set(guarded)
            for value in expr.values:
                self.check_expr(value, frozenset(accumulated))
                accumulated |= _guard_facts(value)[0]
            return
        if isinstance(expr, ast.IfExp):
            self.check_expr(expr.test, guarded)
            positive, negative = _guard_facts(expr.test)
            self.check_expr(expr.body, frozenset(guarded | positive))
            self.check_expr(expr.orelse, frozenset(guarded | negative))
            return
        if isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            chain = self.is_hub_call(expr)
            if chain is not None and chain not in guarded:
                self.report(expr, chain)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.AST) and not isinstance(
                    child, (ast.expr_context, ast.operator, ast.cmpop,
                            ast.boolop, ast.unaryop)):
                self.check_expr(child, guarded)


@register
class P5UnguardedTelemetryInFastPath(PerfRule):
    id = "P5"
    title = "Unguarded telemetry call in fast-mode-reachable code"
    severity = Severity.ERROR
    rationale = ("Fast mode runs with no telemetry hub at all — that is "
                 "where its speedup and bit-identity contract come from; "
                 "a hub method call reachable from the fast serve loop "
                 "must be dominated by an `is not None`/truthiness guard "
                 "or it crashes (or silently re-enables telemetry cost).")

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        model = self.model(modules)
        scoped = {module.rel for module in modules}
        findings: List[Finding] = []
        for fid in sorted(model.fast_fids):
            decl = model.graph.functions[fid]
            if decl.module_rel not in scoped:
                continue
            findings.extend(self._check_function(fid, model))
        return findings

    def _check_function(self, fid: str, model: HotModel) -> List[Finding]:
        decl = model.graph.functions[fid]
        attr_types: Dict[str, str] = {}
        if decl.class_name is not None:
            for class_decl in model.graph.classes.get(decl.class_name, []):
                if class_decl.module_rel == decl.module_rel:
                    attr_types.update(class_decl.attr_types)

        def is_hub_call(call: ast.Call) -> Optional[str]:
            func = call.func
            if not isinstance(func, ast.Attribute) or \
                    func.attr not in _HUB_METHODS:
                return None
            chain = dotted_name(func.value)
            if chain is None:
                return None
            segments = chain.split(".")
            if segments[-1] in _HUB_NAME_HINTS:
                return chain
            if len(segments) == 2 and segments[0] == "self" and \
                    attr_types.get(segments[1]) == "TelemetryHub":
                return chain
            return None

        findings: List[Finding] = []
        evidence = self._evidence_chain(fid, model)

        def report(call: ast.Call, chain: str) -> None:
            method = call.func.attr if isinstance(call.func, ast.Attribute) \
                else "emit"
            findings.append(Finding(
                rule=self.id, path=decl.module_rel, line=call.lineno,
                col=call.col_offset, severity=self.severity,
                chain=evidence,
                message=(f"telemetry call '{chain}.{method}(...)' in "
                         f"'{decl.qualname}' is reachable from the fast "
                         "serve loop but not dominated by a "
                         f"'{chain} is not None' guard; fast mode runs "
                         "with no hub")))

        body: Sequence[ast.stmt] = getattr(decl.node, "body", [])
        _GuardWalker(is_hub_call, report).walk(body, frozenset())
        return findings

    @staticmethod
    def _evidence_chain(fid: str, model: HotModel) -> Tuple[str, ...]:
        path: List[str] = []
        cursor: Optional[str] = fid
        while cursor is not None:
            decl = model.graph.functions[cursor]
            path.append(f"{decl.qualname} ({decl.module_rel}:{decl.line})")
            cursor = model.fast_parent.get(cursor)
        return tuple(reversed(path))
