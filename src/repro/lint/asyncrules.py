"""Async/thread-safety rules A1-A5 over the interprocedural effect analysis.

The service layer (PR 6) is an asyncio HTTP front end over a threaded,
multiprocessing worker pool — a shape with failure modes no per-function
rule can see:

- **A1** — a blocking call (direct or transitively through any number of
  project functions) on the event loop: the whole server stalls for every
  client until the call returns.
- **A2** — a coroutine object created but never awaited or scheduled: the
  body silently never runs (Python only warns at garbage-collection time,
  in production usually never).
- **A3** — ``await`` while holding a ``threading.Lock``: the coroutine
  suspends with the lock held; any *thread* then contending for that lock
  blocks, and if the loop thread itself needs it next, deadlock.
- **A4** — an attribute written both from event-loop code and from code
  reachable from a thread target without a common lock: a data race the
  GIL does not excuse (read-modify-write interleaves).
- **A5** — an asyncio primitive (``asyncio.Lock``, ``asyncio.Queue``, ...)
  touched from non-async code reachable from a thread target: asyncio
  primitives are not thread-safe; cross-thread signalling must go through
  ``loop.call_soon_threadsafe`` / ``run_coroutine_threadsafe``.

All five share one :class:`AsyncAnalysis` (call graph + effect fixpoint +
loop-side/thread-side reachability), built once per engine run and cached
on the :class:`~repro.lint.engine.ProjectContext`.  Findings carry
``chain`` traces — caller, intermediate hops, concrete sink — so the
report explains *why* the loop-side call is considered blocking.

Soundness caveats (see DESIGN.md section 14): resolution is may-call, so
an unresolvable receiver means a *missed* edge, not a spurious one;
``__init__`` writes are exempt from A4 (construction happens-before
sharing); process targets are excluded from the thread side (no shared
memory).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    BLOCKING,
    EDGE_EXECUTOR,
    EDGE_THREAD,
    CallGraph,
    CallSite,
    FunctionDecl,
    build_call_graph,
    call_closure,
)
from .effects import EffectAnalysis, analyze_effects
from .engine import Module, ProjectRule, register
from .finding import Finding, Severity

#: asyncio entry points that *consume* a coroutine object (for A2).
_COROUTINE_SCHEDULERS = frozenset((
    "create_task", "ensure_future", "gather", "wait", "wait_for",
    "shield", "run", "run_until_complete", "run_coroutine_threadsafe",
    "as_completed", "timeout"))


@dataclass
class AsyncAnalysis:
    """Shared artifact of one engine run: graph, effects, reachability."""

    graph: CallGraph
    effects: EffectAnalysis
    #: Functions that (may) run on the event loop: every ``async def``
    #: plus the closure of plain ``call`` edges out of them.
    loop_side: Set[str] = field(default_factory=set)
    #: Functions that (may) run on a worker thread: thread/executor spawn
    #: targets plus the closure of plain ``call`` edges out of them.
    #: Process targets are deliberately excluded — no shared memory.
    thread_side: Set[str] = field(default_factory=set)
    #: thread-side entry fid -> (spawning fid, spawn site) evidence.
    spawn_evidence: Dict[str, Tuple[str, CallSite]] = \
        field(default_factory=dict)


# The plain-call-edge closure lives in callgraph.py now (the perf rules'
# hot-region computation shares it); keep the historical local name.
_call_closure = call_closure


def build_async_analysis(modules: Sequence[Module]) -> AsyncAnalysis:
    graph = build_call_graph(modules)
    effects = analyze_effects(graph)
    async_fids = {fid for fid, decl in graph.functions.items()
                  if decl.is_async}
    analysis = AsyncAnalysis(graph=graph, effects=effects)
    analysis.loop_side = _call_closure(graph, async_fids)

    spawn_roots: Set[str] = set()
    for fid in sorted(graph.functions):
        for site in graph.facts[fid].sites:
            for target, kind in site.spawned:
                if kind in (EDGE_THREAD, EDGE_EXECUTOR) and \
                        target in graph.functions:
                    spawn_roots.add(target)
                    analysis.spawn_evidence.setdefault(target, (fid, site))
    analysis.thread_side = _call_closure(graph, spawn_roots)
    return analysis


class AsyncRule(ProjectRule):
    """Base: builds (or reuses) the shared analysis, then delegates."""

    _CACHE_KEY = "async:analysis"
    severity = Severity.ERROR
    scope = None

    def analysis(self, modules: Sequence[Module]) -> AsyncAnalysis:
        if self.context is None:
            return build_async_analysis(modules)
        cached = self.context.cache.get(self._CACHE_KEY)
        if cached is None:
            cached = build_async_analysis(self.context.modules)
            self.context.cache[self._CACHE_KEY] = cached
        return cached

    def check_project(self, modules: Sequence[Module]) -> List[Finding]:
        analysis = self.analysis(modules)
        scoped = {module.rel for module in modules}
        return [finding for finding in self.collect(analysis)
                if finding.path in scoped]

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        raise NotImplementedError


def _spawn_chain(analysis: AsyncAnalysis, fid: str) -> Tuple[str, ...]:
    """Evidence that ``fid`` is thread-reachable: spawn site + call path."""
    graph = analysis.graph
    # Find a spawn entry from which fid is call-reachable (BFS for a path).
    for entry in sorted(analysis.spawn_evidence):
        parents: Dict[str, str] = {}
        frontier = [entry]
        seen = {entry}
        found = entry == fid
        while frontier and not found:
            current = frontier.pop(0)
            for callee, kind in graph.successors(current):
                if kind != "call" or callee not in graph.functions or \
                        callee in seen:
                    continue
                seen.add(callee)
                parents[callee] = current
                if callee == fid:
                    found = True
                    break
                frontier.append(callee)
        if not found:
            continue
        spawner_fid, site = analysis.spawn_evidence[entry]
        spawner = graph.functions[spawner_fid]
        steps = [f"{spawner.qualname} ({spawner.module_rel}:{site.line}) "
                 f"spawns {graph.functions[entry].qualname}"]
        path: List[str] = []
        cursor = fid
        while cursor != entry:
            path.append(cursor)
            cursor = parents[cursor]
        for hop_from, hop_to in zip([entry] + path[::-1], path[::-1]):
            steps.append(f"{graph.functions[hop_from].qualname} -> "
                         f"{graph.functions[hop_to].qualname}")
        return tuple(steps)
    return ()


@register
class A1BlockingOnEventLoop(AsyncRule):
    id = "A1"
    title = "Blocking call reachable from async code"
    rationale = ("A blocking call on the event loop stalls every client of "
                 "the server until it returns; off-load it with "
                 "loop.run_in_executor(...) or asyncio.to_thread(...).")

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        graph, effects = analysis.graph, analysis.effects
        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            decl = graph.functions[fid]
            if not decl.is_async:
                continue
            for site in graph.facts[fid].sites:
                if site.is_lock_with:
                    continue        # A3's territory: reported once, there
                finding = self._site_finding(decl, site, graph, effects)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _site_finding(self, decl: FunctionDecl, site: CallSite,
                      graph: CallGraph, effects: EffectAnalysis
                      ) -> Optional[Finding]:
        direct = [sink for effect, sink in site.sinks if effect == BLOCKING]
        if direct:
            sink = direct[0]
            chain = (f"{decl.qualname} ({decl.module_rel}:{site.line}) "
                     f"-> {sink}",)
            return self._finding(decl, site, sink, chain)
        for callee in site.callees:
            callee_decl = graph.functions.get(callee)
            if callee_decl is None or callee_decl.is_async:
                # An async callee that blocks is reported in its own body —
                # one finding per offending call, not per await chain.
                continue
            if effects.has(callee, BLOCKING):
                sink = effects.sink(callee, BLOCKING) or "blocking call"
                chain = (
                    f"{decl.qualname} ({decl.module_rel}:{site.line}) "
                    f"-> {callee_decl.qualname}",
                ) + effects.chain(callee, BLOCKING)
                return self._finding(decl, site, sink, chain)
        return None

    def _finding(self, decl: FunctionDecl, site: CallSite, sink: str,
                 chain: Tuple[str, ...]) -> Finding:
        return Finding(
            rule=self.id, path=decl.module_rel, line=site.line,
            col=site.col, severity=self.severity, chain=chain,
            message=(f"blocking call on the event loop: '{site.label}' in "
                     f"'async def {decl.qualname}' reaches '{sink}'; "
                     "wrap it in loop.run_in_executor(...) or "
                     "asyncio.to_thread(...)"))


@register
class A2CoroutineNeverAwaited(AsyncRule):
    id = "A2"
    title = "Coroutine created but never awaited or scheduled"
    rationale = ("Calling an async def only builds a coroutine object; "
                 "without await/create_task/gather the body never runs "
                 "and the bug is silent.")

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        graph = analysis.graph
        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            decl = graph.functions[fid]
            parents = _parent_map(decl.node)
            for site in graph.facts[fid].sites:
                if not isinstance(site.node, ast.Call) or not site.callees:
                    continue
                callee_decls = [graph.functions[c] for c in site.callees
                                if c in graph.functions]
                if not callee_decls or \
                        not all(c.is_async for c in callee_decls):
                    continue
                verdict = _coroutine_consumption(site.node, parents,
                                                 decl.node)
                if verdict is None:
                    continue
                findings.append(Finding(
                    rule=self.id, path=decl.module_rel, line=site.line,
                    col=site.col, severity=self.severity,
                    chain=(f"{decl.qualname} ({decl.module_rel}:"
                           f"{site.line}) builds coroutine "
                           f"{callee_decls[0].qualname}() and "
                           f"{verdict}",),
                    message=(f"coroutine '{site.label}(...)' is created in "
                             f"'{decl.qualname}' but {verdict}; await it "
                             "or schedule it with asyncio.create_task")))
        return findings


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)) and node is not root:
                continue
            parents[child] = node
            stack.append(child)
    return parents


def _coroutine_consumption(call: ast.Call,
                           parents: Dict[ast.AST, ast.AST],
                           function_node: ast.AST) -> Optional[str]:
    """None when the coroutine is consumed; else a short description of
    how it leaks."""
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, ast.Await):
            return None
        if isinstance(parent, ast.Call) and parent.func is not node:
            # Argument to another call: consumed if that call is a known
            # scheduler; any other callee is conservatively assumed to
            # await/schedule it (it escapes our view).
            return None
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return None
        if isinstance(parent, ast.Expr):
            return "discards it without awaiting"
        if isinstance(parent, ast.Assign):
            names = [target.id for target in parent.targets
                     if isinstance(target, ast.Name)]
            if not names:
                return None     # stored into a structure: escapes our view
            if _name_used_after(function_node, parent, names):
                return None
            return (f"binds it to '{names[0]}' which is never used again")
        node = parent
    return None


def _name_used_after(function_node: ast.AST, assign: ast.Assign,
                     names: List[str]) -> bool:
    wanted = set(names)
    for node in ast.walk(function_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in wanted:
            return True
    return False


@register
class A3AwaitUnderThreadingLock(AsyncRule):
    id = "A3"
    title = "await while holding a threading.Lock"
    rationale = ("Suspending with a threading lock held blocks every "
                 "thread that contends for it until the coroutine resumes "
                 "— and deadlocks if the loop thread needs it first. Use "
                 "asyncio.Lock in coroutines.")

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        graph = analysis.graph
        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            decl = graph.functions[fid]
            if not decl.is_async:
                continue
            for lock_with in graph.facts[fid].lock_withs:
                if not lock_with.contains_await:
                    continue
                findings.append(Finding(
                    rule=self.id, path=decl.module_rel,
                    line=lock_with.node.lineno,
                    col=lock_with.node.col_offset, severity=self.severity,
                    chain=(f"{decl.qualname} ({decl.module_rel}:"
                           f"{lock_with.node.lineno}) awaits inside "
                           f"'with {lock_with.label}:'",),
                    message=(f"'async def {decl.qualname}' awaits while "
                             f"holding threading lock '{lock_with.label}'; "
                             "the lock stays held across the suspension "
                             "point — use asyncio.Lock instead")))
        return findings


@register
class A4CrossThreadWriteWithoutLock(AsyncRule):
    id = "A4"
    title = "Attribute written from event loop and thread without a lock"
    rationale = ("A field mutated from both the event loop and a spawned "
                 "thread without a common lock is a data race; the GIL "
                 "does not make read-modify-write atomic.")

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        graph = analysis.graph
        by_attr: Dict[Tuple[str, str],
                      List[Tuple[str, FunctionDecl, object]]] = {}
        for fid in sorted(graph.functions):
            decl = graph.functions[fid]
            if decl.class_name is None or \
                    decl.qualname.endswith("__init__"):
                continue    # construction happens-before sharing
            for write in graph.facts[fid].writes:
                by_attr.setdefault((decl.class_name, write.attr),
                                   []).append((fid, decl, write))

        findings: List[Finding] = []
        for (class_name, attr) in sorted(by_attr):
            writes = by_attr[(class_name, attr)]
            loop_writes = [w for w in writes
                           if w[0] in analysis.loop_side]
            thread_writes = [w for w in writes
                             if w[0] in analysis.thread_side]
            if not loop_writes or not thread_writes:
                continue
            held_sets = [w[2].held                      # type: ignore[attr-defined]
                         for w in loop_writes + thread_writes]
            common = set(held_sets[0])
            for held in held_sets[1:]:
                common &= held
            if common:
                continue
            _fid, decl, write = loop_writes[0]
            _tfid, thread_decl, thread_write = thread_writes[0]
            node = write.node                           # type: ignore[attr-defined]
            chain = (
                f"{decl.qualname} ({decl.module_rel}:"
                f"{node.lineno}) writes self.{attr} on the event loop",
                f"{thread_decl.qualname} ({thread_decl.module_rel}:"
                f"{thread_write.node.lineno}) "      # type: ignore[attr-defined]
                f"writes self.{attr} on a worker thread",
            ) + _spawn_chain(analysis, _tfid)
            findings.append(Finding(
                rule=self.id, path=decl.module_rel, line=node.lineno,
                col=node.col_offset, severity=self.severity, chain=chain,
                message=(f"attribute '{class_name}.{attr}' is written from "
                         f"event-loop code ('{decl.qualname}') and from "
                         f"thread-reachable code "
                         f"('{thread_decl.qualname}') without a common "
                         "lock; guard both writes with one "
                         "threading.Lock")))
        return findings


@register
class A5AsyncioPrimitiveOffLoop(AsyncRule):
    id = "A5"
    title = "asyncio primitive touched from thread-reachable sync code"
    rationale = ("asyncio locks/queues/events are not thread-safe; from a "
                 "worker thread, signal the loop with "
                 "loop.call_soon_threadsafe or run_coroutine_threadsafe.")

    def collect(self, analysis: AsyncAnalysis) -> List[Finding]:
        graph = analysis.graph
        findings: List[Finding] = []
        for fid in sorted(graph.functions):
            decl = graph.functions[fid]
            if decl.is_async or fid not in analysis.thread_side:
                continue
            for touch in graph.facts[fid].touches:
                chain = (f"{decl.qualname} ({decl.module_rel}:"
                         f"{touch.node.lineno}) touches "
                         f"{touch.type_name} via '{touch.label}'",
                         ) + _spawn_chain(analysis, fid)
                findings.append(Finding(
                    rule=self.id, path=decl.module_rel,
                    line=touch.node.lineno, col=touch.node.col_offset,
                    severity=self.severity, chain=chain,
                    message=(f"'{decl.qualname}' runs on a worker thread "
                             f"but touches {touch.type_name} "
                             f"('{touch.label}'); asyncio primitives are "
                             "not thread-safe — use "
                             "loop.call_soon_threadsafe / "
                             "run_coroutine_threadsafe")))
        return findings
