"""Forward dataflow analyses over the lint CFG.

The generic piece is :class:`ForwardAnalysis`, a worklist solver whose
states are frozensets of facts (``None`` marks an unreachable block).  Two
standard analyses are built on it:

- :class:`ReachingDefinitions` (*may*, union join) — which definitions can
  reach each program point; :func:`compute_def_use` derives def-use chains
  from it (the basis of the dead-store rule F4 and the unseeded-RNG rule F1).
- :class:`DefiniteAssignment` (*must*, intersection join) — which locals are
  assigned on *every* path to a point (the basis of rule F3).  It opts into
  ``ignore_zero_trip``: loop bodies are assumed to execute at least once,
  because flagging every use-after-loop would bury the real findings.

Edge semantics follow :mod:`repro.lint.cfg`: along ``exception`` edges a
*may* analysis propagates ``IN | OUT`` of the source block (the raise may
have happened before or after any statement) and a *must* analysis
propagates ``IN`` (nothing in the block is guaranteed to have run).
"""

from __future__ import annotations

import abc
import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .cfg import Cfg, Element, FunctionNode

State = Optional[FrozenSet[int]]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                  ast.ClassDef)


# -- name extraction ---------------------------------------------------------

class _NameScanner(ast.NodeVisitor):
    """Collects Name loads and walrus bindings of one element's expression
    tree, honouring Python scoping: nested function/class/lambda bodies are
    skipped (their reads are *escaping* uses, handled separately) and
    comprehension targets shadow the enclosing scope."""

    def __init__(self) -> None:
        self.loads: List[ast.Name] = []
        self.walrus: List[Tuple[str, ast.AST]] = []
        self._shadow: List[Set[str]] = []

    def _shadowed(self, name: str) -> bool:
        return any(name in layer for layer in self._shadow)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and not self._shadowed(node.id):
            self.loads.append(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        if isinstance(node.target, ast.Name) and \
                not self._shadowed(node.target.id):
            self.walrus.append((node.target.id, node))
        self.visit(node.value)

    def _visit_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension],
                             *bodies: ast.expr) -> None:
        # The first iterable evaluates in the enclosing scope, before the
        # comprehension's targets exist.
        self.visit(generators[0].iter)
        bound: Set[str] = set()
        for generator in generators:
            for name_node in ast.walk(generator.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        self._shadow.append(bound)
        for index, generator in enumerate(generators):
            if index > 0:
                self.visit(generator.iter)
            for condition in generator.ifs:
                self.visit(condition)
        for body in bodies:
            self.visit(body)
        self._shadow.pop()

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators, node.elt)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators, node.elt)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators, node.elt)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators, node.key, node.value)

    def _visit_arguments(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + \
                [d for d in args.kw_defaults if d is not None]:
            self.visit(default)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._visit_arguments(node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._visit_arguments(node.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_arguments(node.args)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        for base in node.bases:
            self.visit(base)
        for keyword in node.keywords:
            self.visit(keyword.value)


def _scan(node: ast.AST) -> _NameScanner:
    scanner = _NameScanner()
    scanner.visit(node)
    return scanner


def assigned_names(target: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Simple names bound by an assignment target (tuples/starred included;
    attribute and subscript targets bind no local name)."""
    names: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store,)):
            names.append((node.id, node))
    return names


def element_defs(element: Element) -> List[Tuple[str, ast.AST]]:
    """(name, node) pairs the element binds, walrus expressions included."""
    node = element.node
    if element.kind == "bind-name":
        return [(element.name or "", node)]
    if element.kind == "bind":
        return assigned_names(node)
    defs: List[Tuple[str, ast.AST]] = list(_scan(node).walrus)
    if element.kind != "stmt":
        return defs
    if isinstance(node, ast.Assign):
        for target in node.targets:
            defs.extend(assigned_names(target))
    elif isinstance(node, ast.AnnAssign):
        if node.value is not None and isinstance(node.target, ast.Name):
            defs.append((node.target.id, node.target))
    elif isinstance(node, ast.AugAssign):
        if isinstance(node.target, ast.Name):
            defs.append((node.target.id, node.target))
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name.split(".")[0]
            defs.append((local, node))
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        defs.append((node.name, node))
    return defs


def element_kills(element: Element) -> List[str]:
    """Names a ``del`` statement unbinds."""
    node = element.node
    if element.kind == "stmt" and isinstance(node, ast.Delete):
        return [name_node.id for target in node.targets
                for name_node in ast.walk(target)
                if isinstance(name_node, ast.Name) and
                isinstance(name_node.ctx, ast.Del)]
    return []


def element_walrus_names(element: Element) -> Set[str]:
    """Names bound by walrus expressions inside the element."""
    return {name for name, _ in _scan(element.node).walrus}


def element_uses(element: Element) -> List[ast.Name]:
    """Name loads the element evaluates (nested scopes excluded)."""
    node = element.node
    if element.kind == "bind-name":
        return []
    uses = list(_scan(node).loads)
    if element.kind == "stmt" and isinstance(node, ast.AugAssign) and \
            isinstance(node.target, ast.Name):
        # x += 1 loads x before storing it.
        uses.append(node.target)
    return uses


# -- scope information -------------------------------------------------------

@dataclass
class ScopeInfo:
    """Names of one function scope, as the flow rules need them."""

    params: FrozenSet[str]
    bound: FrozenSet[str]          # every name bound anywhere in the scope
    globals_declared: FrozenSet[str]
    escaping: FrozenSet[str]       # names read by nested scopes (closures)

    @property
    def local_names(self) -> FrozenSet[str]:
        return (self.params | self.bound) - self.globals_declared


def scope_info(cfg: Cfg) -> ScopeInfo:
    """Compute the scope facts of a CFG's function."""
    params: Set[str] = set()
    func = cfg.func
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in (list(getattr(args, "posonlyargs", [])) + args.args +
                    args.kwonlyargs):
            params.add(arg.arg)
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)

    bound: Set[str] = set()
    globals_declared: Set[str] = set()
    escaping: Set[str] = set()
    for element in cfg.elements():
        for name, _ in element_defs(element):
            bound.add(name)
        node = element.node
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            globals_declared.update(node.names)
        for child in ast.walk(node):
            if isinstance(child, _NESTED_SCOPES) and child is not node:
                for inner in ast.walk(child):
                    if isinstance(inner, ast.Name) and \
                            isinstance(inner.ctx, ast.Load):
                        escaping.add(inner.id)
            elif isinstance(node, _NESTED_SCOPES) and child is node:
                # A nested def as the element itself: its body escapes too.
                for part in ast.iter_child_nodes(node):
                    for inner in ast.walk(part):
                        if isinstance(inner, ast.Name) and \
                                isinstance(inner.ctx, ast.Load):
                            escaping.add(inner.id)
    return ScopeInfo(params=frozenset(params), bound=frozenset(bound),
                     globals_declared=frozenset(globals_declared),
                     escaping=frozenset(escaping))


# -- the generic solver ------------------------------------------------------

@dataclass
class DataflowResult:
    """Fixed-point block states (``None`` = unreachable)."""

    block_in: List[State]
    block_out: List[State]


class ForwardAnalysis(abc.ABC):
    """A forward dataflow analysis over frozensets of integer fact ids."""

    #: Union join (may) when True, intersection join (must) when False.
    may: bool = True
    #: Drop ``zero-trip`` loop edges (assume loop bodies run at least once).
    ignore_zero_trip: bool = False

    def entry_state(self, cfg: Cfg) -> FrozenSet[int]:
        return frozenset()

    @abc.abstractmethod
    def transfer(self, element: Element,
                 state: FrozenSet[int]) -> FrozenSet[int]:
        ...

    # -- solver --------------------------------------------------------------

    def _edge_state(self, kind: str, source_in: State,
                    source_out: State) -> State:
        if kind == "zero-trip" and self.ignore_zero_trip:
            return None
        if kind == "exception":
            if self.may:
                if source_in is None:
                    return source_out
                if source_out is None:
                    return source_in
                return source_in | source_out
            return source_in
        return source_out

    def _join(self, states: Sequence[FrozenSet[int]]) -> State:
        if not states:
            return None
        merged = states[0]
        for state in states[1:]:
            merged = (merged | state) if self.may else (merged & state)
        return merged

    def run(self, cfg: Cfg) -> DataflowResult:
        n = len(cfg.blocks)
        preds = cfg.predecessors()
        block_in: List[State] = [None] * n
        block_out: List[State] = [None] * n
        block_in[cfg.entry] = self.entry_state(cfg)

        worklist = deque(range(n))
        pending = set(worklist)
        while worklist:
            index = worklist.popleft()
            pending.discard(index)
            if index == cfg.entry:
                in_state: State = self.entry_state(cfg)
            else:
                contributions = [
                    edge_state for src, kind in preds[index]
                    if (edge_state := self._edge_state(
                        kind, block_in[src], block_out[src])) is not None]
                in_state = self._join(contributions)
            block_in[index] = in_state
            out_state = in_state
            if out_state is not None:
                for element in cfg.blocks[index].elements:
                    out_state = self.transfer(element, out_state)
            if out_state != block_out[index]:
                block_out[index] = out_state
                for edge in cfg.blocks[index].edges:
                    if edge.dst not in pending:
                        pending.add(edge.dst)
                        worklist.append(edge.dst)
        return DataflowResult(block_in=block_in, block_out=block_out)

    def element_states(self, cfg: Cfg, result: DataflowResult
                       ) -> Iterator[Tuple[Element, State]]:
        """Replay: yields (element, state before it) in block order."""
        for block in cfg.blocks:
            state = result.block_in[block.id]
            for element in block.elements:
                yield element, state
                if state is not None:
                    state = self.transfer(element, state)


# -- reaching definitions ----------------------------------------------------

@dataclass
class Definition:
    """One binding site of a local name (``element`` is None for params)."""

    id: int
    name: str
    node: ast.AST
    element: Optional[Element]

    @property
    def is_param(self) -> bool:
        return self.element is None


class ReachingDefinitions(ForwardAnalysis):
    """Which definitions may reach each point (classic may-analysis)."""

    may = True

    def __init__(self, cfg: Cfg, scope: ScopeInfo) -> None:
        self.cfg = cfg
        self.scope = scope
        self.definitions: List[Definition] = []
        self._by_name: Dict[str, Set[int]] = {}
        self._param_ids: List[int] = []
        for name in sorted(scope.params):
            self._param_ids.append(self._add(name, cfg.func, None))
        for element in cfg.elements():
            for name, node in element_defs(element):
                self._add(name, node, element)
        self._effects: Dict[int, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
        for element in cfg.elements():
            gen: Set[int] = set()
            kill: Set[int] = set()
            for definition in self.definitions:
                if definition.element is element:
                    gen.add(definition.id)
                    kill.update(self._by_name[definition.name])
            for name in element_kills(element):
                kill.update(self._by_name.get(name, set()))
            self._effects[id(element)] = (frozenset(gen), frozenset(kill))

    def _add(self, name: str, node: ast.AST,
             element: Optional[Element]) -> int:
        definition = Definition(id=len(self.definitions), name=name,
                                node=node, element=element)
        self.definitions.append(definition)
        self._by_name.setdefault(name, set()).add(definition.id)
        return definition.id

    def defs_of_name(self, name: str) -> FrozenSet[int]:
        return frozenset(self._by_name.get(name, set()))

    def entry_state(self, cfg: Cfg) -> FrozenSet[int]:
        return frozenset(self._param_ids)

    def transfer(self, element: Element,
                 state: FrozenSet[int]) -> FrozenSet[int]:
        gen, kill = self._effects[id(element)]
        return (state - kill) | gen


@dataclass
class DefUse:
    """Def-use chains of one function."""

    reaching: ReachingDefinitions
    result: DataflowResult
    #: definition id -> use sites it reaches.
    uses_of_def: Dict[int, List[ast.Name]] = field(default_factory=dict)
    #: id(use node) -> reaching definition ids.
    defs_of_use: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    @property
    def definitions(self) -> List[Definition]:
        return self.reaching.definitions


def compute_def_use(cfg: Cfg, scope: Optional[ScopeInfo] = None) -> DefUse:
    """Run reaching definitions and link every use to its reaching defs."""
    scope = scope or scope_info(cfg)
    reaching = ReachingDefinitions(cfg, scope)
    result = reaching.run(cfg)
    chains = DefUse(reaching=reaching, result=result)
    local_names = scope.local_names
    for element, state in reaching.element_states(cfg, result):
        if state is None:
            continue
        for use in element_uses(element):
            if use.id not in local_names:
                continue
            reaching_ids = state & reaching.defs_of_name(use.id)
            chains.defs_of_use[id(use)] = reaching_ids
            for def_id in reaching_ids:
                chains.uses_of_def.setdefault(def_id, []).append(use)
    return chains


# -- definite assignment -----------------------------------------------------

class DefiniteAssignment(ForwardAnalysis):
    """Which locals are assigned on every path (must-analysis).

    Facts are indices into :attr:`names`.  Loop bodies are assumed to
    execute at least once (``ignore_zero_trip``): a use after ``for``/
    ``while`` is judged against the state at the end of an iteration, not
    against the infeasible-looking zero-trip path — the latter would flag
    half of all real accumulate-in-a-loop code.
    """

    may = False
    ignore_zero_trip = True

    def __init__(self, cfg: Cfg, scope: ScopeInfo) -> None:
        self.cfg = cfg
        self.scope = scope
        self.names: List[str] = sorted(scope.local_names)
        self._index: Dict[str, int] = {
            name: index for index, name in enumerate(self.names)}

    def fact(self, name: str) -> Optional[int]:
        return self._index.get(name)

    def entry_state(self, cfg: Cfg) -> FrozenSet[int]:
        return frozenset(self._index[name] for name in self.scope.params
                         if name in self._index)

    def transfer(self, element: Element,
                 state: FrozenSet[int]) -> FrozenSet[int]:
        added = [self._index[name] for name, _ in element_defs(element)
                 if name in self._index]
        removed = [self._index[name] for name in element_kills(element)
                   if name in self._index]
        if not added and not removed:
            return state
        return (state | frozenset(added)) - frozenset(removed)


def build_function_nodes(tree: ast.Module) -> List[FunctionNode]:
    """The module body plus every (nested) function definition in it."""
    nodes: List[FunctionNode] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nodes.append(node)
    return nodes
