"""Incremental analysis cache: content-hash-keyed, call-graph-aware.

A full self-lint parses every file and rebuilds the whole-program call
graph, effect summaries, and hot-region model — tens of seconds on the
full repository, which is too slow for pre-commit use.  Almost all of
that work is redundant between runs: lint findings for a file can only
change when

- the file's own content changes,
- the content of a file it is coupled to changes (project rules reason
  across files along call/spawn edges and imports), or
- the linter itself changes (rules, engine, flags).

This module persists per-file results keyed by content hash, with a
file-level dependency edge set derived from the PR 7 call graph plus the
import graph.  On a warm run it hashes the universe, computes the dirty
set (changed files plus everything transitively coupled to them), and

- replays every finding from the cache when nothing is dirty — no
  parsing, no rules, sub-second; or
- re-runs the engine restricted to the dirty set and merges fresh
  results with cached ones for the untouched files.

The cache file is schema-versioned and fingerprinted against the lint
package's own sources, the active rule ids, and the scope flag, so any
change to the linter invalidates it wholesale.  Writes are atomic
(tmp + fsync + ``os.replace``), the same discipline as the result store.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .asyncrules import AsyncRule
from .callgraph import build_call_graph
from .engine import LintEngine, LintReport, Module
from .finding import Finding

#: Bump when the cache entry layout changes; old caches are discarded.
CACHE_FORMAT = 1

#: Default cache location, resolved relative to the working directory.
DEFAULT_CACHE = ".simlint-cache.json"


@dataclass
class CacheStats:
    """What one cached run did, for the CLI's one-line summary."""

    total_files: int = 0
    reanalyzed: int = 0
    #: True when every finding came from the cache (nothing dirty).
    replayed: bool = False
    #: The dirty set itself (repo-relative, sorted) — tests assert on it.
    reanalyzed_files: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (f"re-analyzed {self.reanalyzed} of {self.total_files} "
                f"file(s)")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _rel_of(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def engine_fingerprint(engine: LintEngine) -> str:
    """Identity of the analyzer itself: lint sources + rules + flags.

    Any change to the lint package (a new rule, a fixed false positive)
    must invalidate every cached entry — stale findings are worse than a
    cold run.
    """
    digest = hashlib.sha256()
    package = Path(__file__).resolve().parent
    for source in sorted(package.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(source.read_bytes())
    digest.update(repr(sorted(rule.id for rule in engine.rules))
                  .encode("utf-8"))
    digest.update(f"ignore_scope={engine.ignore_scope}".encode("utf-8"))
    digest.update(f"format={CACHE_FORMAT}".encode("utf-8"))
    return digest.hexdigest()


# -- dependency edges ---------------------------------------------------------

def _module_name_map(modules: Sequence[Module]) -> Dict[str, str]:
    """Dotted module name -> rel, for resolving imports to files."""
    names: Dict[str, str] = {}
    for module in modules:
        parts = module.rel.split("/")
        if parts and parts[0] == "src":
            parts = parts[1:]
        if not parts:
            continue
        leaf = parts[-1]
        if leaf == "__init__.py":
            dotted = ".".join(parts[:-1])
        elif leaf.endswith(".py"):
            dotted = ".".join(parts[:-1] + [leaf[:-3]])
        else:
            continue
        if dotted:
            names[dotted] = module.rel
    return names


def _import_targets(module: Module,
                    names: Dict[str, str]) -> Set[str]:
    """Rels of in-universe modules this module imports."""
    package_parts = module.rel.split("/")
    if package_parts and package_parts[0] == "src":
        package_parts = package_parts[1:]
    package = package_parts[:-1]        # the containing package
    targets: Set[str] = set()

    def resolve(dotted: str) -> None:
        # The name may be a module or a member of one: try the longest
        # prefix that maps to a file.
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            rel = names.get(".".join(parts[:cut]))
            if rel is not None:
                targets.add(rel)
                return

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolve(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package[:len(package) - (node.level - 1)] \
                    if node.level > 1 else package
                prefix = ".".join(base)
            else:
                prefix = ""
            stem = node.module or ""
            head = ".".join(p for p in (prefix, stem) if p)
            if head:
                resolve(head)
            for alias in node.names:
                if alias.name != "*" and head:
                    resolve(f"{head}.{alias.name}")
    return targets


def file_dependencies(modules: Sequence[Module],
                      cache: Optional[Dict[str, object]] = None
                      ) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """Undirected file-coupling edges, as ``(call_edges, import_edges)``.

    ``call_edges`` is *directed*, caller file -> callee file.  A finding in
    file G depends on file F in exactly two call-mediated ways: G's effect
    chains run through functions G transitively calls (so G must be redone
    when a transitive callee changes), and G's hot-region status depends on
    paths that reach it from the per-cycle roots (so G must be redone when
    a transitive caller changes).  Invalidation therefore takes the forward
    closure plus the reverse closure of the changed files — but never mixes
    directions, which is what keeps a leaf edit from dirtying the world via
    caller-of-callee zigzags.  ``import_edges`` is undirected and only ever
    applied one hop: the cross-file contract rules correlate two modules
    through a shared imported hub, and one hop reaches the hub.  Closing
    imports transitively would collapse the repository into one connected
    component (every module meets its package ``__init__``).
    """
    call_edges: Dict[str, Set[str]] = {m.rel: set() for m in modules}
    import_edges: Dict[str, Set[str]] = {m.rel: set() for m in modules}

    analysis = cache.get(AsyncRule._CACHE_KEY) if cache else None
    graph = analysis.graph if analysis is not None \
        else build_call_graph(modules)
    for fid in graph.functions:
        caller_rel = graph.functions[fid].module_rel
        for callee, _kind in graph.successors(fid):
            decl = graph.functions.get(callee)
            if decl is not None and decl.module_rel != caller_rel:
                call_edges.setdefault(caller_rel, set()).add(decl.module_rel)

    names = _module_name_map(modules)
    for module in modules:
        for target in _import_targets(module, names):
            if target != module.rel:
                import_edges.setdefault(module.rel, set()).add(target)
                import_edges.setdefault(target, set()).add(module.rel)
    return call_edges, import_edges


def _directed_closure(seeds: Set[str],
                      edges: Dict[str, Sequence[str]]) -> Set[str]:
    reached = set(seeds)
    frontier = sorted(seeds)
    while frontier:
        rel = frontier.pop()
        for neighbour in edges.get(rel, ()):
            if neighbour not in reached:
                reached.add(neighbour)
                frontier.append(neighbour)
    return reached


def dependency_closure(seeds: Set[str],
                       call_edges: Dict[str, Sequence[str]],
                       import_edges: Optional[Dict[str, Sequence[str]]] = None
                       ) -> Set[str]:
    """Seeds, one import hop, and both directed call closures (unmixed)."""
    expanded = set(seeds)
    if import_edges:
        for rel in seeds:
            expanded.update(import_edges.get(rel, ()))
    reverse: Dict[str, Set[str]] = {}
    for rel, targets in call_edges.items():
        for target in targets:
            reverse.setdefault(target, set()).add(rel)
    return (_directed_closure(expanded, call_edges)
            | _directed_closure(expanded, reverse))


# -- the cache itself ---------------------------------------------------------

@dataclass
class IncrementalCache:
    """Per-file result cache wrapped around a :class:`LintEngine` run."""

    path: Path
    root: Path
    #: rel -> entry dict (hash, findings, suppressed, parse_error, deps)
    files: Dict[str, Dict[str, object]] = field(default_factory=dict)
    fingerprint: str = ""

    @classmethod
    def load(cls, path: Path, root: Path,
             fingerprint: str) -> "IncrementalCache":
        cache = cls(path=path, root=root, fingerprint=fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or \
                payload.get("format") != CACHE_FORMAT or \
                payload.get("fingerprint") != fingerprint:
            return cache        # engine changed: discard wholesale
        stored = payload.get("files")
        if isinstance(stored, dict):
            cache.files = {rel: entry for rel, entry in stored.items()
                           if isinstance(entry, dict)}
        return cache

    def save(self) -> None:
        payload = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint,
            "files": {rel: self.files[rel] for rel in sorted(self.files)},
        }
        data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        tmp_path = self.path.with_suffix(".json.tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    # -- invalidation ---------------------------------------------------------

    def _current_hashes(self, engine: LintEngine,
                        paths: Sequence[Path]) -> Dict[str, str]:
        hashes: Dict[str, str] = {}
        for file_path in engine.collect_files(paths):
            hashes[_rel_of(file_path, self.root)] = \
                _sha256(file_path.read_bytes())
        return hashes

    def _adjacency(self) -> Tuple[Dict[str, Sequence[str]],
                                  Dict[str, Sequence[str]]]:
        calls = {rel: tuple(entry.get("deps", ()))   # type: ignore[arg-type]
                 for rel, entry in self.files.items()}
        imports = {rel: tuple(entry.get("imports", ()))  # type: ignore
                   for rel, entry in self.files.items()}
        return calls, imports

    def dirty_set(self, hashes: Dict[str, str]) -> Set[str]:
        """Files needing re-analysis: changed/new/removed plus closure."""
        seeds: Set[str] = set()
        for rel, content_hash in hashes.items():
            entry = self.files.get(rel)
            if entry is None or entry.get("hash") != content_hash:
                seeds.add(rel)
        for rel in self.files:
            if rel not in hashes and not (self.root / rel).exists():
                # Deleted from disk (not merely outside the lint paths):
                # its neighbours lose a coupling partner.
                seeds.add(rel)
        calls, imports = self._adjacency()
        closure = dependency_closure(seeds, calls, imports)
        return {rel for rel in closure if rel in hashes}

    # -- the run --------------------------------------------------------------

    def run(self, engine: LintEngine, paths: Sequence[Path]
            ) -> Tuple[LintReport, CacheStats]:
        hashes = self._current_hashes(engine, paths)
        dirty = self.dirty_set(hashes)
        stats = CacheStats(total_files=len(hashes), reanalyzed=len(dirty),
                           reanalyzed_files=tuple(sorted(dirty)))

        if not dirty:
            stats.replayed = True
            return self._replay(hashes), stats

        restrict: Optional[FrozenSet[str]] = frozenset(dirty)
        if dirty == set(hashes):
            restrict = None     # cold run: nothing to merge, skip filtering
        partial = engine.run(paths, restrict=restrict)
        report = self._merge(partial, hashes, dirty)
        self._store(partial, engine, hashes, dirty)
        self.save()
        return report, stats

    def _replay(self, hashes: Dict[str, str]) -> LintReport:
        report = LintReport(files_checked=len(hashes))
        for rel in hashes:
            entry = self.files[rel]
            report.findings.extend(
                Finding.from_dict(payload)
                for payload in entry.get("findings", ()))
            suppressed = int(entry.get("suppressed", 0))
            report.suppressed += suppressed
            if suppressed:
                report.suppressed_by_file[rel] = suppressed
            if entry.get("parse_error"):
                report.parse_errors += 1
        report.findings.sort(key=Finding.sort_key)
        return report

    def _merge(self, partial: LintReport, hashes: Dict[str, str],
               dirty: Set[str]) -> LintReport:
        report = LintReport(files_checked=len(hashes),
                            findings=list(partial.findings),
                            suppressed=partial.suppressed,
                            parse_errors=partial.parse_errors,
                            suppressed_by_file=dict(
                                partial.suppressed_by_file))
        for rel in hashes:
            if rel in dirty:
                continue
            entry = self.files.get(rel)
            if entry is None:       # cold run with restrict=None
                continue
            report.findings.extend(
                Finding.from_dict(payload)
                for payload in entry.get("findings", ()))
            suppressed = int(entry.get("suppressed", 0))
            report.suppressed += suppressed
            if suppressed:
                report.suppressed_by_file[rel] = suppressed
            if entry.get("parse_error"):
                report.parse_errors += 1
        report.findings.sort(key=Finding.sort_key)
        return report

    def _store(self, partial: LintReport, engine: LintEngine,
               hashes: Dict[str, str], dirty: Set[str]) -> None:
        context = engine.last_context
        modules: Sequence[Module] = context.modules if context else ()
        call_edges, import_edges = file_dependencies(
            modules, context.cache if context else None)

        by_rel: Dict[str, List[Finding]] = {}
        for finding in partial.findings:
            by_rel.setdefault(finding.path, []).append(finding)
        parsed = {module.rel for module in modules}

        for rel in self.files.copy():
            if rel not in hashes and not (self.root / rel).exists():
                del self.files[rel]
        fresh = dirty if dirty != set(hashes) else set(hashes)
        for rel in fresh:
            findings = by_rel.get(rel, [])
            self.files[rel] = {
                "hash": hashes[rel],
                "findings": [finding.to_dict() for finding in findings],
                "suppressed": partial.suppressed_by_file.get(rel, 0),
                "parse_error": rel not in parsed,
            }
        # Refresh coupling edges for every file of this run's universe:
        # edges are derived from the *current* whole program, so even
        # clean files get their adjacency updated.
        for rel, entry in self.files.items():
            if rel in call_edges:
                entry["deps"] = sorted(call_edges[rel])
            if rel in import_edges:
                entry["imports"] = sorted(import_edges[rel])
