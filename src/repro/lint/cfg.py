"""Per-function control-flow graphs for the flow-sensitive lint rules.

A :class:`Cfg` is a list of basic blocks over *elements* — the atoms the
dataflow analyses transfer over.  Compound statements never appear inside a
block; only their header expressions do (an ``if`` contributes a ``test``
element, a ``for`` an ``iter`` element plus a ``bind`` element for the loop
target), so every element either binds names, uses names, or both, and the
analyses never need to recurse into control structure.

Modelling choices (kept deliberately simple — simlint trades precision for
explainability, see DESIGN.md section 12):

- **Loops** get three exit-relevant edges: ``header -> after`` tagged
  ``zero-trip`` (the body never ran), ``body-end -> header`` (the back edge)
  and ``body-end -> after`` (the loop exhausted after >= 1 iterations).  A
  *must* analysis that opts into ``ignore_zero_trip`` thereby assumes loop
  bodies execute at least once — the pragmatic choice for definite-assignment
  checking, where the zero-trip path is a different bug class and a noisy one.
- **try/except**: every block touched inside a ``try`` body gets an edge
  tagged ``exception`` to every handler entry.  Because a raise can interrupt
  a block mid-way, *may* analyses propagate ``IN | OUT`` of the source along
  exception edges and *must* analyses propagate ``IN`` (nothing in the block
  is guaranteed to have executed).
- **finally** bodies run on the normal join of try/handler exits; abrupt
  exits (a ``return`` inside ``try``) skip them in this model.
- **raise**/``return`` edge to the function exit block (plus, for raises
  inside a ``try``, the implicit exception edges).  Code after them lands in
  a fresh, unreachable block, which the analyses see as TOP and skip.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]

#: Element kinds: ``stmt`` (a simple statement), ``test`` (a branch/loop/
#: match-subject expression), ``iter`` (a for-loop iterable), ``bind`` (a
#: for/with/match target expression), ``bind-name`` (an except-handler name).
ELEMENT_KINDS = ("stmt", "test", "iter", "bind", "bind-name")


@dataclass
class Element:
    """One atom of a basic block."""

    kind: str
    node: ast.AST
    name: Optional[str] = None      # only for "bind-name" elements


@dataclass
class Edge:
    """A directed edge; ``kind`` is "normal", "zero-trip" or "exception"."""

    dst: int
    kind: str = "normal"


@dataclass
class Block:
    """A basic block: elements executed in order, then outgoing edges."""

    id: int
    elements: List[Element] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)


@dataclass
class Cfg:
    """The control-flow graph of one function (or a module body)."""

    func: FunctionNode
    blocks: List[Block]
    entry: int
    exit: int

    def predecessors(self) -> List[List[Tuple[int, str]]]:
        """Per-block list of (source block id, edge kind) pairs."""
        preds: List[List[Tuple[int, str]]] = [[] for _ in self.blocks]
        for block in self.blocks:
            for edge in block.edges:
                preds[edge.dst].append((block.id, edge.kind))
        return preds

    def elements(self) -> List[Element]:
        """Every element, in block order (for def-table construction)."""
        out: List[Element] = []
        for block in self.blocks:
            out.extend(block.elements)
        return out


class _Builder:
    """Single-pass CFG construction over one function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.current: Optional[int] = self.entry
        #: (continue target, break target) per enclosing loop.
        self._loops: List[Tuple[int, int]] = []
        #: Blocks touched inside each enclosing try body (for exception edges).
        self._try_scopes: List[List[int]] = []

    # -- plumbing ------------------------------------------------------------

    def _new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        self.blocks[src].edges.append(Edge(dst=dst, kind=kind))

    def _resume(self) -> int:
        """The block to append to (a fresh, unreachable one after a jump)."""
        if self.current is None:
            self.current = self._new_block()
            for scope in self._try_scopes:
                scope.append(self.current)
        return self.current

    def _emit(self, element: Element) -> None:
        block = self._resume()
        self.blocks[block].elements.append(element)
        for scope in self._try_scopes:
            if block not in scope:
                scope.append(block)

    def _jump(self, dst: int, kind: str = "normal") -> None:
        """Terminate the current block with an edge to ``dst``."""
        if self.current is not None:
            self._edge(self.current, dst, kind)
        self.current = None

    # -- statement dispatch --------------------------------------------------

    def build(self) -> Cfg:
        self._statements(self.func.body)
        if self.current is not None:
            self._edge(self.current, self.exit)
        return Cfg(func=self.func, blocks=self.blocks,
                   entry=self.entry, exit=self.exit)

    def _statements(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._statement(statement)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar") and
                isinstance(stmt, getattr(ast, "TryStar"))):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            self._match(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit(Element("stmt", stmt))
            self._jump(self.exit)
        elif isinstance(stmt, ast.Raise):
            self._emit(Element("stmt", stmt))
            self._jump(self.exit)
        elif isinstance(stmt, ast.Break):
            self._emit(Element("stmt", stmt))
            self._jump(self._loops[-1][1] if self._loops else self.exit)
        elif isinstance(stmt, ast.Continue):
            self._emit(Element("stmt", stmt))
            self._jump(self._loops[-1][0] if self._loops else self.exit)
        else:
            # Simple statement (including nested function/class definitions,
            # whose bodies get their own CFGs and are opaque here).
            self._emit(Element("stmt", stmt))

    # -- compound statements -------------------------------------------------

    def _if(self, stmt: ast.If) -> None:
        self._emit(Element("test", stmt.test))
        head = self.current
        assert head is not None
        after = self._new_block()

        self.current = self._new_block()
        self._edge(head, self.current)
        self._statements(stmt.body)
        if self.current is not None:
            self._edge(self.current, after)

        if stmt.orelse:
            self.current = self._new_block()
            self._edge(head, self.current)
            self._statements(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            self._edge(head, after)
        self.current = after

    def _loop_exits(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
                    header: int, after: int) -> int:
        """Route loop-exit edges through the ``else`` clause when present;
        returns the block the header's zero-trip edge should target."""
        if not stmt.orelse:
            return after
        orelse = self._new_block()
        saved = self.current
        self.current = orelse
        self._statements(stmt.orelse)
        if self.current is not None:
            self._edge(self.current, after)
        self.current = saved
        return orelse

    def _while(self, stmt: ast.While) -> None:
        header = self._new_block()
        self._jump(header)
        self.current = header
        self._emit(Element("test", stmt.test))
        header = self._resume()   # test may not have split; normalize

        after = self._new_block()
        exit_target = self._loop_exits(stmt, header, after)
        self._edge(header, exit_target, "zero-trip")

        body = self._new_block()
        self._edge(header, body)
        self._loops.append((header, after))
        self.current = body
        self._statements(stmt.body)
        if self.current is not None:
            # Back edge plus the ">= 1 iterations then the test failed" exit.
            self._edge(self.current, header)
            self._edge(self.current, exit_target)
        self._loops.pop()
        self.current = after

    def _for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        self._emit(Element("iter", stmt.iter))
        header = self.current
        assert header is not None

        after = self._new_block()
        exit_target = self._loop_exits(stmt, header, after)
        self._edge(header, exit_target, "zero-trip")

        bind = self._new_block()
        self._edge(header, bind)
        self.blocks[bind].elements.append(Element("bind", stmt.target))
        self._loops.append((bind, after))
        self.current = bind
        self._statements(stmt.body)
        if self.current is not None:
            self._edge(self.current, bind)
            self._edge(self.current, exit_target)
        self._loops.pop()
        self.current = after

    def _try(self, stmt: ast.stmt) -> None:
        handlers: List[ast.ExceptHandler] = getattr(stmt, "handlers", [])
        body: List[ast.stmt] = getattr(stmt, "body", [])
        orelse: List[ast.stmt] = getattr(stmt, "orelse", [])
        finalbody: List[ast.stmt] = getattr(stmt, "finalbody", [])

        handler_entries = [self._new_block() for _ in handlers]
        join = self._new_block()

        # The body starts a fresh block: exception edges must cover only the
        # statements *inside* the try, not whatever preceded it in the
        # enclosing block.
        body_entry = self._new_block()
        self._jump(body_entry)
        self.current = body_entry

        # Try body: record every block it touches for the exception edges.
        self._try_scopes.append([])
        start = self._resume()
        self._try_scopes[-1].append(start)
        self._statements(body)
        touched = self._try_scopes.pop()
        if self.current is not None and orelse:
            self._statements(orelse)
        if self.current is not None:
            self._edge(self.current, join)
        for block in touched:
            for entry in handler_entries:
                self._edge(block, entry, "exception")

        for handler, entry in zip(handlers, handler_entries):
            self.current = entry
            if handler.name:
                self._emit(Element("bind-name", handler, name=handler.name))
            if handler.type is not None:
                self._emit(Element("test", handler.type))
            self._statements(handler.body)
            if self.current is not None:
                self._edge(self.current, join)

        self.current = join
        if finalbody:
            self._statements(finalbody)

    def _with(self, stmt: Union[ast.With, ast.AsyncWith]) -> None:
        for item in stmt.items:
            self._emit(Element("test", item.context_expr))
            if item.optional_vars is not None:
                self._emit(Element("bind", item.optional_vars))
        self._statements(stmt.body)

    def _match(self, stmt: ast.stmt) -> None:
        self._emit(Element("test", getattr(stmt, "subject")))
        head = self.current
        assert head is not None
        after = self._new_block()
        for case in getattr(stmt, "cases"):
            self.current = self._new_block()
            self._edge(head, self.current)
            for name, node in _pattern_bindings(case.pattern):
                self._emit(Element("bind-name", node, name=name))
            if case.guard is not None:
                self._emit(Element("test", case.guard))
            self._statements(case.body)
            if self.current is not None:
                self._edge(self.current, after)
        self._edge(head, after)   # no case matched
        self.current = after


def _pattern_bindings(pattern: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Names a match pattern captures (MatchAs / MatchStar / mapping rest)."""
    names: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(pattern):
        name = getattr(node, "name", None)
        if isinstance(name, str) and node.__class__.__name__ in (
                "MatchAs", "MatchStar"):
            names.append((name, node))
        rest = getattr(node, "rest", None)
        if isinstance(rest, str) and \
                node.__class__.__name__ == "MatchMapping":
            names.append((rest, node))
    return names


def build_cfg(func: FunctionNode) -> Cfg:
    """Build the CFG of one function definition or a whole module body."""
    return _Builder(func).build()


# -- loop nests (hot-region infrastructure for the perf rules) ----------------

LoopNode = Union[ast.For, ast.AsyncFor, ast.While]


@dataclass
class LoopNest:
    """One statement loop of a function body, with its nesting context.

    ``depth`` is 1 for an outermost loop; a loop's ``orelse`` suite runs
    once, after the loop, so loops found there nest under the *parent*, not
    under the loop itself.  Nested function/class definitions are opaque:
    their loops belong to their own scope, not to the enclosing one.
    """

    node: LoopNode
    depth: int
    parent: Optional["LoopNest"] = None
    _node_ids: Optional[FrozenSet[int]] = field(default=None, repr=False)

    def contains(self, node: ast.AST) -> bool:
        """Whether ``node`` sits anywhere inside this loop statement."""
        if self._node_ids is None:
            self._node_ids = frozenset(
                id(child) for child in ast.walk(self.node))
        return id(node) in self._node_ids


def loop_nests(func: FunctionNode) -> List[LoopNest]:
    """Every statement loop of ``func``'s own body, outermost first."""
    found: List[LoopNest] = []

    def walk(statements: Sequence[ast.stmt], depth: int,
             parent: Optional[LoopNest]) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                nest = LoopNest(node=statement, depth=depth + 1,
                                parent=parent)
                found.append(nest)
                walk(statement.body, depth + 1, nest)
                walk(statement.orelse, depth, parent)
                continue
            for _name, value in ast.iter_fields(statement):
                if isinstance(value, list) and value and \
                        isinstance(value[0], ast.stmt):
                    walk(value, depth, parent)
                elif isinstance(value, list) and value and \
                        isinstance(value[0], ast.AST) and \
                        not isinstance(value[0], ast.expr):
                    # except handlers / match cases: structural wrappers
                    # holding their own statement suites.
                    for item in value:
                        for _n, inner in ast.iter_fields(item):
                            if isinstance(inner, list) and inner and \
                                    isinstance(inner[0], ast.stmt):
                                walk(inner, depth, parent)

    walk(func.body, 0, None)
    return found


def iter_loop_exprs(loop: LoopNode) -> Iterator[ast.AST]:
    """Expression roots evaluated on *every iteration* of ``loop``.

    Yields the top-level expression nodes of the loop's per-iteration
    region: its body statements (and, for ``while``, its test), recursing
    through non-loop compound statements but

    - skipping nested statement loops (their bodies are their own region —
      only their ``for``-iterables, evaluated once per outer iteration,
      belong here);
    - skipping nested function/class definitions, which are yielded as
      single nodes (the *definition* executes per iteration; the body does
      not);
    - skipping cold sub-trees: ``raise``/``assert`` statements and
      ``except`` handler bodies, where per-iteration cost is irrelevant.
    """
    if isinstance(loop, ast.While):
        yield loop.test
    for statement in loop.body:
        yield from _region_stmt(statement)


def _region_stmt(node: ast.AST) -> Iterator[ast.AST]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        yield node
        return
    if isinstance(node, (ast.Raise, ast.Assert, ast.Return)) or \
            isinstance(node, ast.excepthandler):
        # Cold or once-per-call: raising/assert-failure paths do not run on
        # the hot iteration, and a ``return`` inside a loop runs at most
        # once per function call.
        return
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
        return
    if isinstance(node, ast.While):
        return
    if isinstance(node, ast.AnnAssign):
        # Annotations are not evaluated per iteration (function-local ones
        # are never evaluated at all).
        if node.value is not None:
            yield node.value
        return
    for _name, value in ast.iter_fields(node):
        items = value if isinstance(value, list) else [value]
        for item in items:
            if isinstance(item, ast.expr):
                yield item
            elif isinstance(item, ast.AST):
                yield from _region_stmt(item)
