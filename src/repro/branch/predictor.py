"""The front-end branch prediction unit: TAGE + BTB + RAS.

For every dynamic control-transfer instruction the unit produces a
:class:`PredictionOutcome` classifying the front-end consequence:

- ``CORRECT`` — predicted path matches the resolved path;
- ``DECODE_RESTEER`` — the direction was right but the BTB had no target
  (or the hit came from the slow BTB level), so fetch restarts from decode:
  a short, fixed bubble;
- ``MISPREDICT`` — direction/target wrong; the pipeline redirects when the
  branch *resolves* in the back-end (the expensive case the paper measures).

This is the standard trace-driven decomposition: prediction windows follow
the resolved path while penalties are charged according to what the real
predictor would have done.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..common.config import BranchPredictorConfig
from ..isa.instruction import BranchKind, X86Instruction
from .btb import BranchTargetBuffer, BtbOutcome, ReturnAddressStack
from .tage import TagePredictor


class PredictionOutcome(enum.Enum):
    CORRECT = "correct"
    DECODE_RESTEER = "decode-resteer"
    MISPREDICT = "mispredict"


@dataclass
class BranchResolution:
    outcome: PredictionOutcome
    predicted_taken: bool
    actual_taken: bool


class BranchPredictionUnit:
    """Combines direction, target and return-address prediction."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.tage = TagePredictor(self.config)
        self.btb = BranchTargetBuffer(self.config)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        self.branches = 0
        self.mispredicts = 0
        self.decode_resteers = 0

    def observe(self, inst: X86Instruction, taken: bool,
                actual_target: int) -> BranchResolution:
        """Resolve one dynamic branch; updates all predictor state."""
        if not inst.is_branch:
            raise ValueError(f"instruction at {inst.address:#x} is not a branch")
        self.branches += 1
        if self.config.perfect:
            # Limit study: still trains the predictors (so statistics stay
            # meaningful) but never reports a redirect.
            self._train_only(inst, taken, actual_target)
            return BranchResolution(PredictionOutcome.CORRECT, taken, taken)
        kind = inst.branch_kind

        if kind is BranchKind.CONDITIONAL:
            resolution = self._observe_conditional(inst, taken, actual_target)
        elif kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            resolution = self._observe_direct(inst, actual_target)
            if kind is BranchKind.CALL:
                self.ras.push(inst.end_address)
        elif kind is BranchKind.INDIRECT_CALL:
            resolution = self._observe_indirect(inst, actual_target)
            self.ras.push(inst.end_address)
        elif kind is BranchKind.RET:
            resolution = self._observe_return(inst, actual_target)
        elif kind is BranchKind.INDIRECT:
            resolution = self._observe_indirect(inst, actual_target)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unhandled branch kind {kind}")

        if resolution.outcome is PredictionOutcome.MISPREDICT:
            self.mispredicts += 1
        elif resolution.outcome is PredictionOutcome.DECODE_RESTEER:
            self.decode_resteers += 1
        return resolution

    def observe_fast(self, inst: X86Instruction, taken: bool,
                     actual_target: int) -> int:
        """Counters-only :meth:`observe`: identical predictor state changes
        and outcome counters, but returns the outcome as a plain int
        (0 = correct, 1 = decode resteer, 2 = mispredict) and skips the
        per-branch :class:`BranchResolution` allocation.  Conditional
        branches — the overwhelmingly common kind — go through the fused
        single-walk :meth:`TagePredictor.observe`; the rare kinds reuse the
        slow-path helpers verbatim.
        """
        self.branches += 1
        if self.config.perfect:
            self._train_only(inst, taken, actual_target)
            return 0
        kind = inst.branch_kind

        if kind is BranchKind.CONDITIONAL:
            address = inst.address
            predicted_taken = self.tage.observe(address, taken)
            if predicted_taken != taken:
                if taken:
                    self.btb.install(address, actual_target, kind)
                self.mispredicts += 1
                return 2
            if taken:
                btb_outcome, record = self.btb.lookup(address)
                self.btb.install(address, actual_target, kind)
                if btb_outcome is BtbOutcome.MISS or record is None:
                    self.decode_resteers += 1
                    return 1
                if record.target != actual_target:
                    self.mispredicts += 1
                    return 2
            return 0

        if kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL):
            resolution = self._observe_direct(inst, actual_target)
            if kind is BranchKind.CALL:
                self.ras.push(inst.end_address)
        elif kind is BranchKind.INDIRECT_CALL:
            resolution = self._observe_indirect(inst, actual_target)
            self.ras.push(inst.end_address)
        elif kind is BranchKind.RET:
            resolution = self._observe_return(inst, actual_target)
        elif kind is BranchKind.INDIRECT:
            resolution = self._observe_indirect(inst, actual_target)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unhandled branch kind {kind}")
        outcome = resolution.outcome
        if outcome is PredictionOutcome.MISPREDICT:
            self.mispredicts += 1
            return 2
        if outcome is PredictionOutcome.DECODE_RESTEER:
            self.decode_resteers += 1
            return 1
        return 0

    def _observe_conditional(self, inst: X86Instruction, taken: bool,
                             actual_target: int) -> BranchResolution:
        predicted_taken = self.tage.predict(inst.address)
        self.tage.update(inst.address, taken)
        if predicted_taken != taken:
            if taken:
                self.btb.install(inst.address, actual_target, inst.branch_kind)
            return BranchResolution(
                PredictionOutcome.MISPREDICT, predicted_taken, taken)
        if taken:
            btb_outcome, record = self.btb.lookup(inst.address)
            self.btb.install(inst.address, actual_target, inst.branch_kind)
            if btb_outcome is BtbOutcome.MISS or record is None:
                return BranchResolution(
                    PredictionOutcome.DECODE_RESTEER, predicted_taken, taken)
            if record.target != actual_target:
                return BranchResolution(
                    PredictionOutcome.MISPREDICT, predicted_taken, taken)
        return BranchResolution(PredictionOutcome.CORRECT, predicted_taken, taken)

    def _observe_direct(self, inst: X86Instruction,
                        actual_target: int) -> BranchResolution:
        btb_outcome, record = self.btb.lookup(inst.address)
        self.btb.install(inst.address, actual_target, inst.branch_kind)
        if btb_outcome is BtbOutcome.MISS or record is None:
            return BranchResolution(PredictionOutcome.DECODE_RESTEER, True, True)
        return BranchResolution(PredictionOutcome.CORRECT, True, True)

    def _observe_return(self, inst: X86Instruction,
                        actual_target: int) -> BranchResolution:
        predicted = self.ras.pop()
        if predicted is None or predicted != actual_target:
            return BranchResolution(PredictionOutcome.MISPREDICT, True, True)
        return BranchResolution(PredictionOutcome.CORRECT, True, True)

    def _observe_indirect(self, inst: X86Instruction,
                          actual_target: int) -> BranchResolution:
        btb_outcome, record = self.btb.lookup(inst.address)
        self.btb.update_target(inst.address, actual_target, inst.branch_kind)
        if btb_outcome is BtbOutcome.MISS or record is None or \
                record.target != actual_target:
            return BranchResolution(PredictionOutcome.MISPREDICT, True, True)
        return BranchResolution(PredictionOutcome.CORRECT, True, True)

    def _train_only(self, inst: X86Instruction, taken: bool,
                    actual_target: int) -> None:
        kind = inst.branch_kind
        if kind is BranchKind.CONDITIONAL:
            self.tage.update(inst.address, taken)
            if taken:
                self.btb.install(inst.address, actual_target, kind)
        elif kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL,
                      BranchKind.INDIRECT_CALL, BranchKind.INDIRECT):
            self.btb.install(inst.address, actual_target, kind)
            if kind in (BranchKind.CALL, BranchKind.INDIRECT_CALL):
                self.ras.push(inst.end_address)
        elif kind is BranchKind.RET:
            self.ras.pop()

    @property
    def mpki_denominator(self) -> int:
        return self.branches

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.mispredicts / instructions if instructions else 0.0
