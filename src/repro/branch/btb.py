"""Branch Target Buffer (2-level, 2 branches per entry) and return stack.

The BTB answers "is there a branch in/near this PC, and where does it go?".
We model the paper's Table I structure: entries each track up to two branches
from the same aligned region, organised as a small fast first level backed by
a larger second level.  A hit in L2 (but not L1) costs a one-cycle fetch
bubble; a miss on a taken branch forces a decode-time resteer.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..common.config import BranchPredictorConfig
from ..isa.instruction import BranchKind


class BtbOutcome(enum.Enum):
    L1_HIT = "l1-hit"
    L2_HIT = "l2-hit"
    MISS = "miss"


@dataclass
class BtbRecord:
    target: int
    kind: BranchKind


class _BtbLevel:
    """One LRU level; each entry holds up to ``branches_per_entry`` branches."""

    def __init__(self, entries: int, branches_per_entry: int,
                 region_bytes: int = 16) -> None:
        self.capacity = entries
        self.branches_per_entry = branches_per_entry
        self.region_bytes = region_bytes
        # region address -> {pc: BtbRecord}, ordered for LRU.
        self._entries: "OrderedDict[int, Dict[int, BtbRecord]]" = OrderedDict()

    def _region(self, pc: int) -> int:
        return pc // self.region_bytes

    def lookup(self, pc: int) -> Optional[BtbRecord]:
        region = self._region(pc)
        slot = self._entries.get(region)
        if slot is None:
            return None
        record = slot.get(pc)
        if record is not None:
            self._entries.move_to_end(region)
        return record

    def install(self, pc: int, record: BtbRecord) -> None:
        region = self._region(pc)
        slot = self._entries.get(region)
        if slot is None:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            slot = {}
            self._entries[region] = slot
        elif pc not in slot and len(slot) >= self.branches_per_entry:
            # Evict the other branch sharing the region entry.
            slot.pop(next(iter(slot)))
        slot[pc] = record
        self._entries.move_to_end(region)

    def __contains__(self, pc: int) -> bool:
        slot = self._entries.get(self._region(pc))
        return slot is not None and pc in slot


class BranchTargetBuffer:
    """Two-level BTB with per-level hit attribution."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        cfg = config or BranchPredictorConfig()
        l1_entries = max(1, cfg.btb_entries // 8)
        self.l1 = _BtbLevel(l1_entries, cfg.btb_branches_per_entry)
        self.l2 = _BtbLevel(cfg.btb_entries, cfg.btb_branches_per_entry)
        self.lookups = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Tuple[BtbOutcome, Optional[BtbRecord]]:
        self.lookups += 1
        record = self.l1.lookup(pc)
        if record is not None:
            self.l1_hits += 1
            return BtbOutcome.L1_HIT, record
        record = self.l2.lookup(pc)
        if record is not None:
            self.l2_hits += 1
            self.l1.install(pc, record)   # promote on L2 hit
            return BtbOutcome.L2_HIT, record
        self.misses += 1
        return BtbOutcome.MISS, None

    def install(self, pc: int, target: int, kind: BranchKind) -> None:
        record = BtbRecord(target=target, kind=kind)
        self.l1.install(pc, record)
        self.l2.install(pc, record)

    def update_target(self, pc: int, target: int, kind: BranchKind) -> None:
        """Refresh a (possibly changed) indirect target."""
        self.install(pc, target, kind)


class ReturnAddressStack:
    """A bounded return-address stack; overflow wraps (oldest entry lost)."""

    def __init__(self, entries: int = 32) -> None:
        self.capacity = entries
        self._stack = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.capacity:
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)
