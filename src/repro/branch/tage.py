"""TAGE conditional branch direction predictor (Seznec, Table I).

A faithful, compact TAGE: a bimodal base predictor plus ``N`` tagged tables
indexed by geometrically increasing global-history lengths.  Folded-history
registers are maintained incrementally so each prediction is O(number of
tables) rather than O(history length).

The predictor exposes ``predict(pc) -> bool`` and ``update(pc, taken)``;
the simulator calls them for every dynamic conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.config import BranchPredictorConfig


class _FoldedHistory:
    """A cyclically folded view of the newest ``original_length`` history bits."""

    __slots__ = ("value", "original_length", "compressed_length", "_out_bit")

    def __init__(self, original_length: int, compressed_length: int) -> None:
        self.value = 0
        self.original_length = original_length
        self.compressed_length = compressed_length
        self._out_bit = original_length % compressed_length

    def update(self, new_bit: int, dropped_bit: int) -> None:
        """Canonical Seznec update: shift in the new bit, cancel the bit
        ageing out of the window at position ``original_length mod
        compressed_length``, then fold the overflow bit back in.  The
        register then always equals the XOR-fold of the newest
        ``original_length`` history bits (checked against a from-scratch
        recomputation in tests/test_tage_folding.py)."""
        mask = (1 << self.compressed_length) - 1
        value = (self.value << 1) | new_bit
        value ^= dropped_bit << self._out_bit
        self.value = (value ^ (value >> self.compressed_length)) & mask


@dataclass
class _TaggedEntry:
    tag: int = 0
    counter: int = 0      # signed 3-bit: -4..3, >= 0 means taken
    useful: int = 0       # 2-bit useful counter


class TagePredictor:
    """TAGE with a 2-bit bimodal base and ``num_tagged_tables`` tagged tables."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        cfg = self.config
        self._base_mask = (1 << cfg.base_entries_log2) - 1
        self._base = [2] * (1 << cfg.base_entries_log2)  # weakly taken... 0..3
        self._num_tables = cfg.num_tagged_tables
        self._entries_log2 = cfg.table_entries_log2
        self._index_mask = (1 << cfg.table_entries_log2) - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._tables: List[List[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(1 << cfg.table_entries_log2)]
            for _ in range(self._num_tables)]
        self._history_lengths = self._geometric_lengths()
        self._history_bits: List[int] = []
        self._index_folds = [
            _FoldedHistory(length, cfg.table_entries_log2)
            for length in self._history_lengths]
        self._tag_folds_a = [
            _FoldedHistory(length, cfg.tag_bits)
            for length in self._history_lengths]
        self._tag_folds_b = [
            _FoldedHistory(length, cfg.tag_bits - 1)
            for length in self._history_lengths]
        self._use_alt_on_new = 0   # 4-bit signed confidence in alt prediction
        self._rng_state = 0x9E3779B9
        # Stats for tests / reports.
        self.predictions = 0
        self.mispredictions = 0

    # -- configuration ------------------------------------------------------

    def _geometric_lengths(self) -> List[int]:
        cfg = self.config
        n = self._num_tables
        if n == 1:
            return [cfg.min_history]
        ratio = (cfg.max_history / cfg.min_history) ** (1.0 / (n - 1))
        lengths = []
        for i in range(n):
            length = int(round(cfg.min_history * (ratio ** i)))
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        lengths[-1] = cfg.max_history
        return lengths

    @property
    def history_lengths(self) -> Tuple[int, ...]:
        return tuple(self._history_lengths)

    # -- hashing -------------------------------------------------------------

    def _table_index(self, pc: int, table: int) -> int:
        fold = self._index_folds[table].value
        length = self._history_lengths[table]
        return (pc ^ (pc >> (self._entries_log2 - table % 4)) ^ fold ^
                (length << 2)) & self._index_mask

    def _table_tag(self, pc: int, table: int) -> int:
        return (pc ^ self._tag_folds_a[table].value ^
                (self._tag_folds_b[table].value << 1)) & self._tag_mask

    # -- prediction -----------------------------------------------------------

    def predict(self, pc: int) -> bool:
        provider, alt, _, _ = self._lookup(pc)
        if provider is None:
            return self._base_prediction(pc)
        table, index = provider
        entry = self._tables[table][index]
        weak = entry.counter in (-1, 0)
        if weak and self._use_alt_on_new >= self.config.use_alt_threshold:
            return self._alt_prediction(pc, alt)
        return entry.counter >= 0

    def _base_prediction(self, pc: int) -> bool:
        return self._base[pc & self._base_mask] >= 2

    def _alt_prediction(self, pc: int,
                        alt: Optional[Tuple[int, int]]) -> bool:
        if alt is None:
            return self._base_prediction(pc)
        table, index = alt
        return self._tables[table][index].counter >= 0

    def _lookup(self, pc: int):
        """Return (provider, alt, provider_pred, alt_pred) component hits."""
        provider = alt = None
        for table in range(self._num_tables - 1, -1, -1):
            index = self._table_index(pc, table)
            if self._tables[table][index].tag == self._table_tag(pc, table):
                if provider is None:
                    provider = (table, index)
                else:
                    alt = (table, index)
                    break
        return provider, alt, None, None

    # -- update ----------------------------------------------------------------

    def update(self, pc: int, taken: bool) -> bool:
        """Update with the resolved outcome; returns True on misprediction."""
        prediction = self.predict(pc)
        mispredicted = prediction != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1

        provider, alt, _, _ = self._lookup(pc)
        if provider is not None:
            table, index = provider
            entry = self._tables[table][index]
            provider_pred = entry.counter >= 0
            alt_pred = self._alt_prediction(pc, alt)
            # Track whether the alternate would have done better on weak hits.
            if entry.counter in (-1, 0) and provider_pred != alt_pred:
                if alt_pred == taken:
                    self._use_alt_on_new = min(15, self._use_alt_on_new + 1)
                else:
                    self._use_alt_on_new = max(-16, self._use_alt_on_new - 1)
            entry.counter = _update_signed(entry.counter, taken, lo=-4, hi=3)
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    entry.useful = min(3, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)
        else:
            base_index = pc & self._base_mask
            counter = self._base[base_index]
            self._base[base_index] = _update_unsigned(counter, taken)

        if mispredicted:
            self._allocate(pc, taken, provider)

        self._push_history(pc, taken)
        return mispredicted

    def _allocate(self, pc: int, taken: bool,
                  provider: Optional[Tuple[int, int]]) -> None:
        start = provider[0] + 1 if provider is not None else 0
        candidates = []
        for table in range(start, self._num_tables):
            index = self._table_index(pc, table)
            if self._tables[table][index].useful == 0:
                candidates.append((table, index))
        if not candidates:
            # Decay usefulness so future allocations can succeed.
            for table in range(start, self._num_tables):
                index = self._table_index(pc, table)
                entry = self._tables[table][index]
                entry.useful = max(0, entry.useful - 1)
            return
        # Prefer the shortest-history candidate with some randomization
        # (classic TAGE anti-ping-pong allocation).
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        if len(candidates) > 1 and (self._rng_state & 3) == 0:
            choice = candidates[1]
        else:
            choice = candidates[0]
        table, index = choice
        entry = self._tables[table][index]
        entry.tag = self._table_tag(pc, table)
        entry.counter = 0 if taken else -1
        entry.useful = 0

    def _push_history(self, pc: int, taken: bool) -> None:
        new_bit = 1 if taken else 0
        self._history_bits.append(new_bit)
        max_needed = self._history_lengths[-1]
        history = self._history_bits
        for table in range(self._num_tables):
            length = self._history_lengths[table]
            dropped = history[-length - 1] if len(history) > length else 0
            self._index_folds[table].update(new_bit, dropped)
            self._tag_folds_a[table].update(new_bit, dropped)
            self._tag_folds_b[table].update(new_bit, dropped)
        if len(history) > max_needed + 1:
            del history[:-max_needed - 1]

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


def _update_signed(counter: int, taken: bool, lo: int, hi: int) -> int:
    if taken:
        return min(hi, counter + 1)
    return max(lo, counter - 1)


def _update_unsigned(counter: int, taken: bool, lo: int = 0, hi: int = 3) -> int:
    if taken:
        return min(hi, counter + 1)
    return max(lo, counter - 1)
