"""TAGE conditional branch direction predictor (Seznec, Table I).

A faithful, compact TAGE: a bimodal base predictor plus ``N`` tagged tables
indexed by geometrically increasing global-history lengths.  Folded-history
registers are maintained incrementally so each prediction is O(number of
tables) rather than O(history length).

The predictor exposes ``predict(pc) -> bool`` and ``update(pc, taken)``;
the simulator calls them for every dynamic conditional branch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.config import BranchPredictorConfig


class _FoldedHistory:
    """A cyclically folded view of the newest ``original_length`` history bits."""

    __slots__ = ("value", "original_length", "compressed_length", "_out_bit",
                 "_mask")

    def __init__(self, original_length: int, compressed_length: int) -> None:
        self.value = 0
        self.original_length = original_length
        self.compressed_length = compressed_length
        self._out_bit = original_length % compressed_length
        self._mask = (1 << compressed_length) - 1

    def update(self, new_bit: int, dropped_bit: int) -> None:
        """Canonical Seznec update: shift in the new bit, cancel the bit
        ageing out of the window at position ``original_length mod
        compressed_length``, then fold the overflow bit back in.  The
        register then always equals the XOR-fold of the newest
        ``original_length`` history bits (checked against a from-scratch
        recomputation in tests/test_tage_folding.py)."""
        value = (self.value << 1) | new_bit
        value ^= dropped_bit << self._out_bit
        self.value = (value ^ (value >> self.compressed_length)) & self._mask


class TagePredictor:
    """TAGE with a 2-bit bimodal base and ``num_tagged_tables`` tagged tables."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig()
        cfg = self.config
        self._base_mask = (1 << cfg.base_entries_log2) - 1
        self._base = [2] * (1 << cfg.base_entries_log2)  # weakly taken... 0..3
        self._num_tables = cfg.num_tagged_tables
        self._entries_log2 = cfg.table_entries_log2
        self._index_mask = (1 << cfg.table_entries_log2) - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        # Tagged tables as parallel arrays of ints (tag / signed 3-bit
        # counter where >= 0 means taken / 2-bit useful): tens of thousands
        # of entries per predictor, so flat int lists beat per-entry objects
        # on both construction time and access latency.
        table_size = 1 << cfg.table_entries_log2
        self._table_tags: List[List[int]] = [
            [0] * table_size for _ in range(self._num_tables)]
        self._table_counters: List[List[int]] = [
            [0] * table_size for _ in range(self._num_tables)]
        self._table_useful: List[List[int]] = [
            [0] * table_size for _ in range(self._num_tables)]
        self._history_lengths = self._geometric_lengths()
        self._history_bits: List[int] = []
        self._index_folds = [
            _FoldedHistory(length, cfg.table_entries_log2)
            for length in self._history_lengths]
        self._tag_folds_a = [
            _FoldedHistory(length, cfg.tag_bits)
            for length in self._history_lengths]
        self._tag_folds_b = [
            _FoldedHistory(length, cfg.tag_bits - 1)
            for length in self._history_lengths]
        #: Per-table (index, tag_a, tag_b) fold triples, prezipped so the
        #: fused fast path iterates without per-branch tuple allocation.
        self._fold_triples = [
            (self._index_folds[t], self._tag_folds_a[t], self._tag_folds_b[t])
            for t in range(self._num_tables)]
        self._use_alt_on_new = 0   # 4-bit signed confidence in alt prediction
        self._rng_state = 0x9E3779B9
        #: Per-PC cache of the history-independent part of each table index
        #: hash (the ``pc``/``length`` XOR terms; see :meth:`_index_static`).
        #: The fast path XORs the live folded history into these, which is
        #: exact because the hash combines its terms purely by XOR.
        self._pc_statics: Dict[int, Tuple[int, ...]] = {}
        # Stats for tests / reports.
        self.predictions = 0
        self.mispredictions = 0

    # -- configuration ------------------------------------------------------

    def _geometric_lengths(self) -> List[int]:
        cfg = self.config
        n = self._num_tables
        if n == 1:
            return [cfg.min_history]
        ratio = (cfg.max_history / cfg.min_history) ** (1.0 / (n - 1))
        lengths = []
        for i in range(n):
            length = int(round(cfg.min_history * (ratio ** i)))
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        lengths[-1] = cfg.max_history
        return lengths

    @property
    def history_lengths(self) -> Tuple[int, ...]:
        return tuple(self._history_lengths)

    # -- hashing -------------------------------------------------------------

    def _table_index(self, pc: int, table: int) -> int:
        fold = self._index_folds[table].value
        length = self._history_lengths[table]
        return (pc ^ (pc >> (self._entries_log2 - table % 4)) ^ fold ^
                (length << 2)) & self._index_mask

    def _table_tag(self, pc: int, table: int) -> int:
        return (pc ^ self._tag_folds_a[table].value ^
                (self._tag_folds_b[table].value << 1)) & self._tag_mask

    def _index_statics(self, pc: int) -> Tuple[int, ...]:
        """The history-independent XOR terms of every table's index hash.

        ``_table_index`` is ``(static ^ folded_history) & mask``, so the
        static part can be computed once per distinct branch PC and reused
        for the rest of the run (property-tested against ``_table_index``
        in tests/test_fast_mode.py).
        """
        statics = self._pc_statics.get(pc)
        if statics is None:
            elog2 = self._entries_log2
            lengths = self._history_lengths
            statics = tuple(
                pc ^ (pc >> (elog2 - table % 4)) ^ (lengths[table] << 2)
                for table in range(self._num_tables))
            self._pc_statics[pc] = statics
        return statics

    # -- prediction -----------------------------------------------------------

    def predict(self, pc: int) -> bool:
        provider, alt, _, _ = self._lookup(pc)
        if provider is None:
            return self._base_prediction(pc)
        table, index = provider
        counter = self._table_counters[table][index]
        weak = counter in (-1, 0)
        if weak and self._use_alt_on_new >= self.config.use_alt_threshold:
            return self._alt_prediction(pc, alt)
        return counter >= 0

    def _base_prediction(self, pc: int) -> bool:
        return self._base[pc & self._base_mask] >= 2

    def _alt_prediction(self, pc: int,
                        alt: Optional[Tuple[int, int]]) -> bool:
        if alt is None:
            return self._base_prediction(pc)
        table, index = alt
        return self._table_counters[table][index] >= 0

    def _lookup(self, pc: int):
        """Return (provider, alt, provider_pred, alt_pred) component hits."""
        provider = alt = None
        for table in range(self._num_tables - 1, -1, -1):
            index = self._table_index(pc, table)
            if self._table_tags[table][index] == self._table_tag(pc, table):
                if provider is None:
                    provider = (table, index)
                else:
                    alt = (table, index)
                    break
        return provider, alt, None, None

    # -- update ----------------------------------------------------------------

    def update(self, pc: int, taken: bool) -> bool:
        """Update with the resolved outcome; returns True on misprediction."""
        prediction = self.predict(pc)
        mispredicted = prediction != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1

        provider, alt, _, _ = self._lookup(pc)
        if provider is not None:
            table, index = provider
            counters = self._table_counters[table]
            counter = counters[index]
            provider_pred = counter >= 0
            alt_pred = self._alt_prediction(pc, alt)
            # Track whether the alternate would have done better on weak hits.
            if counter in (-1, 0) and provider_pred != alt_pred:
                if alt_pred == taken:
                    self._use_alt_on_new = min(15, self._use_alt_on_new + 1)
                else:
                    self._use_alt_on_new = max(-16, self._use_alt_on_new - 1)
            counters[index] = _update_signed(counter, taken, lo=-4, hi=3)
            if provider_pred != alt_pred:
                useful = self._table_useful[table]
                if provider_pred == taken:
                    useful[index] = min(3, useful[index] + 1)
                else:
                    useful[index] = max(0, useful[index] - 1)
        else:
            base_index = pc & self._base_mask
            counter = self._base[base_index]
            self._base[base_index] = _update_unsigned(counter, taken)

        if mispredicted:
            self._allocate(pc, taken, provider)

        self._push_history(pc, taken)
        return mispredicted

    def _allocate(self, pc: int, taken: bool,
                  provider: Optional[Tuple[int, int]]) -> None:
        start = provider[0] + 1 if provider is not None else 0
        candidates = []
        for table in range(start, self._num_tables):
            index = self._table_index(pc, table)
            if self._table_useful[table][index] == 0:
                candidates.append((table, index))
        if not candidates:
            # Decay usefulness so future allocations can succeed.
            for table in range(start, self._num_tables):
                index = self._table_index(pc, table)
                useful = self._table_useful[table]
                useful[index] = max(0, useful[index] - 1)
            return
        # Prefer the shortest-history candidate with some randomization
        # (classic TAGE anti-ping-pong allocation).
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        if len(candidates) > 1 and (self._rng_state & 3) == 0:
            choice = candidates[1]
        else:
            choice = candidates[0]
        table, index = choice
        self._table_tags[table][index] = self._table_tag(pc, table)
        self._table_counters[table][index] = 0 if taken else -1
        self._table_useful[table][index] = 0

    # -- fused fast path --------------------------------------------------------

    def observe(self, pc: int, taken: bool) -> bool:
        """Fused ``predict(pc)`` + ``update(pc, taken)`` in one table walk.

        Returns the prediction (what ``predict`` would have returned) and
        leaves the predictor in exactly the state the two-call sequence
        produces.  The normal path computes every table's index and tag
        three times per branch (predict -> _lookup, update -> predict ->
        _lookup, update -> _lookup); this computes them once, using the
        cached per-PC static hash terms.  Equivalence is enforced by
        hypothesis property tests and the golden-snapshot suite.
        """
        num_tables = self._num_tables
        statics = self._pc_statics.get(pc)
        if statics is None:
            statics = self._index_statics(pc)
        index_mask = self._index_mask
        tag_mask = self._tag_mask
        index_folds = self._index_folds
        tag_folds_a = self._tag_folds_a
        tag_folds_b = self._tag_folds_b
        table_tags = self._table_tags
        table_counters = self._table_counters
        table_useful = self._table_useful

        # Single descending walk: provider = highest-table tag match, alt =
        # next match below it (mirrors _lookup, including its early break).
        indices = [0] * num_tables
        tags = [0] * num_tables
        provider = alt = -1
        for table in range(num_tables - 1, -1, -1):
            index = (statics[table] ^ index_folds[table].value) & index_mask
            indices[table] = index
            tag = (pc ^ tag_folds_a[table].value ^
                   (tag_folds_b[table].value << 1)) & tag_mask
            tags[table] = tag
            if table_tags[table][index] == tag:
                if provider < 0:
                    provider = table
                else:
                    alt = table
                    break

        # Prediction (mirrors predict()).
        if provider < 0:
            prediction = self._base[pc & self._base_mask] >= 2
        else:
            counter = table_counters[provider][indices[provider]]
            if counter in (-1, 0) and \
                    self._use_alt_on_new >= self.config.use_alt_threshold:
                if alt < 0:
                    prediction = self._base[pc & self._base_mask] >= 2
                else:
                    prediction = \
                        table_counters[alt][indices[alt]] >= 0
            else:
                prediction = counter >= 0

        mispredicted = prediction != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1

        # Update (mirrors update()).
        if provider >= 0:
            provider_index = indices[provider]
            counters = table_counters[provider]
            counter = counters[provider_index]
            provider_pred = counter >= 0
            if alt < 0:
                alt_pred = self._base[pc & self._base_mask] >= 2
            else:
                alt_pred = table_counters[alt][indices[alt]] >= 0
            if counter in (-1, 0) and provider_pred != alt_pred:
                if alt_pred == taken:
                    if self._use_alt_on_new < 15:
                        self._use_alt_on_new += 1
                elif self._use_alt_on_new > -16:
                    self._use_alt_on_new -= 1
            if taken:
                counters[provider_index] = counter + 1 if counter < 3 else 3
            else:
                counters[provider_index] = counter - 1 if counter > -4 else -4
            if provider_pred != alt_pred:
                useful = table_useful[provider]
                if provider_pred == taken:
                    if useful[provider_index] < 3:
                        useful[provider_index] += 1
                elif useful[provider_index] > 0:
                    useful[provider_index] -= 1
        else:
            base_index = pc & self._base_mask
            counter = self._base[base_index]
            if taken:
                self._base[base_index] = counter + 1 if counter < 3 else 3
            else:
                self._base[base_index] = counter - 1 if counter > 0 else 0

        # Allocation on misprediction (mirrors _allocate()); every table in
        # the allocation range sits above the provider, so its index/tag was
        # computed in the walk above.
        if mispredicted:
            start = provider + 1 if provider >= 0 else 0
            first = second = -1
            for table in range(start, num_tables):
                if table_useful[table][indices[table]] == 0:
                    if first < 0:
                        first = table
                    else:
                        second = table
                        break
            if first < 0:
                for table in range(start, num_tables):
                    useful = table_useful[table]
                    index = indices[table]
                    if useful[index] > 0:
                        useful[index] -= 1
            else:
                rng = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
                self._rng_state = rng
                choice = second if second >= 0 and (rng & 3) == 0 else first
                index = indices[choice]
                table_tags[choice][index] = tags[choice]
                table_counters[choice][index] = 0 if taken else -1
                table_useful[choice][index] = 0

        # History push (mirrors _push_history(), folds updated inline).
        new_bit = 1 if taken else 0
        history = self._history_bits
        history.append(new_bit)
        hist_len = len(history)
        lengths = self._history_lengths
        for table, triple in enumerate(self._fold_triples):
            length = lengths[table]
            dropped = history[-length - 1] if hist_len > length else 0
            for fold in triple:
                compressed = fold.compressed_length
                value = ((fold.value << 1) | new_bit) ^ \
                    (dropped << fold._out_bit)
                fold.value = (value ^ (value >> compressed)) & fold._mask
        max_needed = lengths[-1]
        if hist_len > max_needed + 1:
            del history[:-max_needed - 1]
        return prediction

    def _push_history(self, pc: int, taken: bool) -> None:
        new_bit = 1 if taken else 0
        self._history_bits.append(new_bit)
        max_needed = self._history_lengths[-1]
        history = self._history_bits
        for table in range(self._num_tables):
            length = self._history_lengths[table]
            dropped = history[-length - 1] if len(history) > length else 0
            self._index_folds[table].update(new_bit, dropped)
            self._tag_folds_a[table].update(new_bit, dropped)
            self._tag_folds_b[table].update(new_bit, dropped)
        if len(history) > max_needed + 1:
            del history[:-max_needed - 1]

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


def _update_signed(counter: int, taken: bool, lo: int, hi: int) -> int:
    if taken:
        return min(hi, counter + 1)
    return max(lo, counter - 1)


def _update_unsigned(counter: int, taken: bool, lo: int = 0, hi: int = 3) -> int:
    if taken:
        return min(hi, counter + 1)
    return max(lo, counter - 1)
