"""Branch prediction: TAGE, BTB, RAS, and prediction-window construction."""

from .btb import BranchTargetBuffer, BtbOutcome, BtbRecord, ReturnAddressStack
from .predictor import BranchPredictionUnit, BranchResolution, PredictionOutcome
from .tage import TagePredictor
from .window import (
    PredictionWindow,
    PredictionWindowBuilder,
    PwTermination,
)

__all__ = [
    "BranchPredictionUnit",
    "BranchResolution",
    "BranchTargetBuffer",
    "BtbOutcome",
    "BtbRecord",
    "PredictionOutcome",
    "PredictionWindow",
    "PredictionWindowBuilder",
    "PwTermination",
    "ReturnAddressStack",
    "TagePredictor",
]
