"""Prediction-window (PW) construction (Section II-A of the paper).

In a decoupled front end the branch predictor emits *prediction windows*: a
range of consecutive instructions predicted to execute.  A PW

- can start anywhere in an I-cache line (it starts wherever the previous PW
  redirected to, or fell through to);
- terminates at the end of the I-cache line (a PW never spans lines);
- terminates at a predicted-taken branch;
- terminates after a predefined number of predicted not-taken branches.

This module segments a resolved dynamic trace into the PW stream the branch
predictor would have produced on the correct path (the trace-driven
approximation; mispredicted branches are charged at resolution by the
simulator, see :mod:`repro.branch.predictor`).

The PW identifier used by PW-aware compaction (PWAC/F-PWAC) is the PW's
*start physical address*: the same static window re-predicted later carries
the same ID.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..common.config import BranchPredictorConfig
from ..workloads.trace import Trace


class PwTermination(enum.Enum):
    LINE_END = "line-end"
    TAKEN_BRANCH = "taken-branch"
    MAX_NOT_TAKEN = "max-not-taken"
    TRACE_END = "trace-end"


@dataclass
class PredictionWindow:
    """One prediction window over ``trace.records[first:last+1]``."""

    pw_id: int                 # start physical address (stable static identity)
    first: int                 # first trace record index (inclusive)
    last: int                  # last trace record index (inclusive)
    start_pc: int
    end_pc: int                # first byte past the last instruction
    next_pc: int               # where control flow goes after this PW
    termination: PwTermination

    @property
    def num_instructions(self) -> int:
        return self.last - self.first + 1

    def record_indices(self) -> range:
        return range(self.first, self.last + 1)


class PredictionWindowBuilder:
    """Streams PWs from a trace.

    The builder is a pure function of (trace, line size, NT-branch limit);
    it holds no predictor state because trace-driven PWs follow the resolved
    path.
    """

    def __init__(self, trace: Trace, line_bytes: int = 64,
                 config: Optional[BranchPredictorConfig] = None) -> None:
        self.trace = trace
        self.line_bytes = line_bytes
        self.config = config or BranchPredictorConfig()

    def windows(self) -> Iterator[PredictionWindow]:
        trace = self.trace
        program = trace.program
        line_bytes = self.line_bytes
        max_not_taken = self.config.max_not_taken_branches_per_pw
        records = trace.records
        total = len(records)
        index = 0
        program_at = program.at
        taken_branch = PwTermination.TAKEN_BRANCH
        max_nt = PwTermination.MAX_NOT_TAKEN
        line_end = PwTermination.LINE_END
        trace_end = PwTermination.TRACE_END

        while index < total:
            first = index
            start_pc = records[index].pc
            start_line = start_pc // line_bytes
            not_taken_seen = 0
            termination = trace_end

            while True:
                record = records[index]
                inst = program_at(record.pc)
                taken = record.next_pc != inst.end_address
                index += 1

                if inst.is_branch and (taken or inst.is_unconditional_transfer):
                    termination = taken_branch
                    break
                if inst.is_branch:
                    not_taken_seen += 1
                    if not_taken_seen >= max_not_taken:
                        termination = max_nt
                        break
                # Line boundary: the next sequential instruction would start
                # outside the PW's I-cache line.
                if record.next_pc // line_bytes != start_line:
                    termination = line_end
                    break
                if index >= total:
                    termination = trace_end
                    break

            last = index - 1
            last_record = records[last]
            last_inst = program_at(last_record.pc)
            yield PredictionWindow(
                pw_id=start_pc,
                first=first,
                last=last,
                start_pc=start_pc,
                end_pc=last_inst.end_address,
                next_pc=last_record.next_pc,
                termination=termination,
            )

    def all_windows(self) -> List[PredictionWindow]:
        return list(self.windows())
