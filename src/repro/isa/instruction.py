"""Static x86-like instruction model.

The simulator does not interpret instruction semantics; it models exactly the
attributes that the front-end (fetcher, decoder, uop cache) observes:

- the byte address and variable length (1..15 bytes),
- how many uops the instruction decodes into and whether it is micro-coded,
- how many immediate/displacement fields its uops carry,
- its branch behaviour (kind and static target), if any,
- its data-memory behaviour (loads/stores), used by the back-end model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.errors import WorkloadError

MAX_X86_INST_LEN = 15


class InstClass(enum.Enum):
    """Coarse instruction class, enough to pick execution latency and uop shape."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    LOAD_ALU = "load-alu"       # load-op form, decodes to 2 uops
    FP = "fp"
    AVX = "avx"                 # 128/256/512-bit vector op
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    NOP = "nop"
    MICROCODED = "microcoded"   # string ops, CPUID-likes: many uops


class BranchKind(enum.Enum):
    NONE = "none"
    CONDITIONAL = "cond"
    UNCONDITIONAL = "jmp"
    CALL = "call"
    INDIRECT_CALL = "indirect-call"
    RET = "ret"
    INDIRECT = "indirect"


@dataclass(frozen=True)
class X86Instruction:
    """One static instruction in a program image."""

    address: int
    length: int
    inst_class: InstClass
    uop_count: int
    imm_disp_count: int = 0
    branch_kind: BranchKind = BranchKind.NONE
    branch_target: Optional[int] = None   # static target (None for RET/indirect)
    is_microcoded: bool = False
    reads_memory: bool = False
    writes_memory: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.length <= MAX_X86_INST_LEN:
            raise WorkloadError(
                f"instruction at {self.address:#x} has invalid length {self.length}")
        if self.uop_count < 1:
            raise WorkloadError(
                f"instruction at {self.address:#x} must decode to >= 1 uop")
        if self.imm_disp_count < 0:
            raise WorkloadError("imm/disp count must be >= 0")
        if self.address < 0:
            raise WorkloadError("instruction address must be non-negative")
        if self.is_branch and self.branch_kind in (
                BranchKind.CONDITIONAL, BranchKind.UNCONDITIONAL, BranchKind.CALL):
            if self.branch_target is None:
                raise WorkloadError(
                    f"direct branch at {self.address:#x} requires a static target")

    @property
    def end_address(self) -> int:
        """Address of the first byte past this instruction."""
        return self.address + self.length

    @property
    def next_sequential(self) -> int:
        return self.end_address

    @property
    def is_branch(self) -> bool:
        return self.branch_kind is not BranchKind.NONE

    @property
    def is_conditional_branch(self) -> bool:
        return self.branch_kind is BranchKind.CONDITIONAL

    @property
    def is_unconditional_transfer(self) -> bool:
        return self.branch_kind in (
            BranchKind.UNCONDITIONAL, BranchKind.CALL,
            BranchKind.INDIRECT_CALL, BranchKind.RET, BranchKind.INDIRECT)

    def cache_lines(self, line_bytes: int = 64) -> Tuple[int, ...]:
        """The I-cache line addresses this instruction's bytes touch."""
        first = self.address // line_bytes
        last = (self.end_address - 1) // line_bytes
        return tuple(line * line_bytes for line in range(first, last + 1))

    def spans_line_boundary(self, line_bytes: int = 64) -> bool:
        return len(self.cache_lines(line_bytes)) > 1
