"""Random-but-realistic x86 instruction synthesis.

The workload generator needs streams of instructions whose *byte lengths*,
*uop counts* and *imm/disp densities* look like compiled x86-64 code, because
those three properties drive uop-cache entry construction (and hence the
fragmentation the paper studies).  The distributions below follow published
measurements of x86-64 binaries (average instruction length a bit under 4
bytes, dominated by 2-5 byte ALU/move forms, a long tail up to 15 bytes for
vector/immediate-heavy forms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import WorkloadError
from .instruction import BranchKind, InstClass, X86Instruction

# Per-class (length distribution, uop count distribution, imm/disp probability).
# Length distributions are (value, weight) pairs.
_LENGTHS: Dict[InstClass, Sequence[Tuple[int, float]]] = {
    InstClass.ALU: ((2, 0.25), (3, 0.35), (4, 0.2), (5, 0.12), (6, 0.05), (7, 0.03)),
    InstClass.NOP: ((1, 0.6), (2, 0.2), (3, 0.2)),
    InstClass.LOAD: ((3, 0.3), (4, 0.3), (5, 0.2), (6, 0.1), (7, 0.1)),
    InstClass.STORE: ((3, 0.3), (4, 0.3), (5, 0.2), (6, 0.1), (7, 0.1)),
    InstClass.LOAD_ALU: ((3, 0.25), (4, 0.3), (5, 0.25), (6, 0.1), (7, 0.1)),
    InstClass.FP: ((4, 0.4), (5, 0.3), (6, 0.2), (8, 0.1)),
    InstClass.AVX: ((4, 0.2), (5, 0.3), (6, 0.3), (8, 0.1), (10, 0.05), (15, 0.05)),
    InstClass.BRANCH: ((2, 0.6), (5, 0.3), (6, 0.1)),
    InstClass.CALL: ((5, 0.9), (6, 0.1)),
    InstClass.RET: ((1, 1.0),),
    InstClass.MICROCODED: ((3, 0.5), (4, 0.3), (7, 0.2)),
}

_UOP_COUNTS: Dict[InstClass, Sequence[Tuple[int, float]]] = {
    InstClass.ALU: ((1, 0.95), (2, 0.05)),
    InstClass.NOP: ((1, 1.0),),
    InstClass.LOAD: ((1, 1.0),),
    InstClass.STORE: ((1, 0.8), (2, 0.2)),
    InstClass.LOAD_ALU: ((2, 1.0),),
    InstClass.FP: ((1, 0.9), (2, 0.1)),
    InstClass.AVX: ((1, 0.6), (2, 0.4)),
    InstClass.BRANCH: ((1, 1.0),),
    InstClass.CALL: ((2, 1.0),),
    InstClass.RET: ((2, 1.0),),
    InstClass.MICROCODED: ((4, 0.4), (5, 0.3), (6, 0.2), (8, 0.1)),
}

_IMM_PROB: Dict[InstClass, float] = {
    InstClass.ALU: 0.35,
    InstClass.NOP: 0.0,
    InstClass.LOAD: 0.55,
    InstClass.STORE: 0.55,
    InstClass.LOAD_ALU: 0.55,
    InstClass.FP: 0.2,
    InstClass.AVX: 0.25,
    InstClass.BRANCH: 0.0,   # branch displacement handled by target field
    InstClass.CALL: 0.0,
    InstClass.RET: 0.0,
    InstClass.MICROCODED: 0.3,
}


@dataclass(frozen=True)
class InstructionMix:
    """Relative frequency of non-branch instruction classes in a workload.

    Branches are injected by the CFG generator, not the mix, so this only
    weights straight-line instruction classes.
    """

    alu: float = 0.42
    nop: float = 0.02
    load: float = 0.18
    store: float = 0.10
    load_alu: float = 0.12
    fp: float = 0.06
    avx: float = 0.06
    microcoded: float = 0.04

    def weights(self) -> List[Tuple[InstClass, float]]:
        pairs = [
            (InstClass.ALU, self.alu),
            (InstClass.NOP, self.nop),
            (InstClass.LOAD, self.load),
            (InstClass.STORE, self.store),
            (InstClass.LOAD_ALU, self.load_alu),
            (InstClass.FP, self.fp),
            (InstClass.AVX, self.avx),
            (InstClass.MICROCODED, self.microcoded),
        ]
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise WorkloadError("instruction mix weights must sum to > 0")
        return [(cls, weight / total) for cls, weight in pairs]


INTEGER_MIX = InstructionMix()
FP_HEAVY_MIX = InstructionMix(alu=0.30, fp=0.16, avx=0.14, load=0.18,
                              store=0.08, load_alu=0.10, nop=0.01, microcoded=0.03)
SERVER_MIX = InstructionMix(alu=0.40, load=0.20, store=0.12, load_alu=0.14,
                            fp=0.02, avx=0.02, nop=0.03, microcoded=0.07)


def _pick(rng: random.Random, dist: Sequence[Tuple[int, float]]) -> int:
    values = [v for v, _ in dist]
    weights = [w for _, w in dist]
    return rng.choices(values, weights=weights, k=1)[0]


class InstructionBuilder:
    """Synthesizes static instructions at increasing addresses.

    One builder is used per program image; it owns no global state beyond the
    RNG handed to it, so identical seeds reproduce identical code bytes.
    """

    def __init__(self, rng: random.Random, mix: InstructionMix = INTEGER_MIX) -> None:
        self._rng = rng
        self._weights = mix.weights()
        self._classes = [cls for cls, _ in self._weights]
        self._probs = [weight for _, weight in self._weights]

    def straightline(self, address: int) -> X86Instruction:
        """One non-branch instruction starting at ``address``."""
        inst_class = self._rng.choices(self._classes, weights=self._probs, k=1)[0]
        return self.of_class(address, inst_class)

    def of_class(self, address: int, inst_class: InstClass,
                 branch_target: Optional[int] = None,
                 branch_kind: BranchKind = BranchKind.NONE) -> X86Instruction:
        length = _pick(self._rng, _LENGTHS[inst_class])
        uop_count = _pick(self._rng, _UOP_COUNTS[inst_class])
        has_imm = self._rng.random() < _IMM_PROB[inst_class]
        imm_count = 1 if has_imm else 0
        if inst_class is InstClass.MICROCODED and has_imm:
            imm_count = self._rng.choice((1, 2))
        return X86Instruction(
            address=address,
            length=length,
            inst_class=inst_class,
            uop_count=uop_count,
            imm_disp_count=imm_count,
            branch_kind=branch_kind,
            branch_target=branch_target,
            is_microcoded=inst_class is InstClass.MICROCODED,
            reads_memory=inst_class in (
                InstClass.LOAD, InstClass.LOAD_ALU, InstClass.RET),
            writes_memory=inst_class in (InstClass.STORE, InstClass.CALL),
        )

    def conditional_branch(self, address: int, target: int) -> X86Instruction:
        return self.of_class(address, InstClass.BRANCH,
                             branch_target=target,
                             branch_kind=BranchKind.CONDITIONAL)

    def unconditional_jump(self, address: int, target: int) -> X86Instruction:
        return self.of_class(address, InstClass.BRANCH,
                             branch_target=target,
                             branch_kind=BranchKind.UNCONDITIONAL)

    def call(self, address: int, target: int) -> X86Instruction:
        return self.of_class(address, InstClass.CALL,
                             branch_target=target, branch_kind=BranchKind.CALL)

    def indirect_call(self, address: int) -> X86Instruction:
        return self.of_class(address, InstClass.CALL,
                             branch_kind=BranchKind.INDIRECT_CALL)

    def ret(self, address: int) -> X86Instruction:
        return self.of_class(address, InstClass.RET, branch_kind=BranchKind.RET)

    def indirect_jump(self, address: int) -> X86Instruction:
        inst = self.of_class(address, InstClass.BRANCH,
                             branch_kind=BranchKind.INDIRECT)
        return inst
