"""Fixed-length micro-operation (uop) model.

Uops are the currency of the uop cache and the back-end.  Following the paper
we assume a 56-bit fixed uop encoding plus separately stored 32-bit
immediate/displacement fields; the exact encoding is implementation defined,
so the model only tracks the attributes that affect storage and timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .instruction import BranchKind, InstClass, X86Instruction

UOP_BITS = 56
UOP_BYTES = UOP_BITS // 8


class UopKind(enum.Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    FP = "fp"
    VEC = "vec"
    BRANCH = "branch"
    NOP = "nop"


_EXEC_LATENCY = {
    UopKind.ALU: 1,
    UopKind.NOP: 1,
    UopKind.BRANCH: 1,
    UopKind.FP: 4,
    UopKind.VEC: 3,
    UopKind.LOAD: 4,   # L1D hit latency; misses add hierarchy latency
    UopKind.STORE: 1,
}


@dataclass(frozen=True)
class Uop:
    """One decoded micro-operation.

    ``pc``/``inst_length`` identify the parent instruction so the uop cache can
    attribute uops to instruction byte ranges (needed for entry termination and
    invalidation), and the back-end can resolve branches.
    """

    pc: int
    inst_length: int
    kind: UopKind
    slot: int                      # index within the parent instruction's uops
    num_slots: int                 # total uops of the parent instruction
    has_imm_disp: bool = False
    is_microcoded: bool = False
    branch_kind: BranchKind = BranchKind.NONE
    branch_target: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.branch_kind is not BranchKind.NONE

    @property
    def is_last_of_inst(self) -> bool:
        return self.slot == self.num_slots - 1

    @property
    def next_sequential_pc(self) -> int:
        return self.pc + self.inst_length

    @property
    def exec_latency(self) -> int:
        return _EXEC_LATENCY[self.kind]

    @property
    def size_bytes(self) -> int:
        return UOP_BYTES


def uops_storage_bytes(uops: Sequence["Uop"], uop_bytes: int,
                       imm_disp_bytes: int) -> int:
    """Line-storage footprint of a uop group: fixed slots + imm/disp slots.

    The single sizing rule shared by the optimized uop cache entry and the
    oracle's reference model, so both sides agree on what "fits in a line"
    means by construction.
    """
    num_imm = sum(1 for uop in uops if uop.has_imm_disp)
    return len(uops) * uop_bytes + num_imm * imm_disp_bytes


_CLASS_TO_KINDS = {
    InstClass.ALU: (UopKind.ALU,),
    InstClass.NOP: (UopKind.NOP,),
    InstClass.LOAD: (UopKind.LOAD,),
    InstClass.STORE: (UopKind.STORE,),
    InstClass.LOAD_ALU: (UopKind.LOAD, UopKind.ALU),
    InstClass.FP: (UopKind.FP,),
    InstClass.AVX: (UopKind.VEC,),
    InstClass.BRANCH: (UopKind.BRANCH,),
    InstClass.CALL: (UopKind.ALU, UopKind.BRANCH),   # push RA + jump
    InstClass.RET: (UopKind.LOAD, UopKind.BRANCH),   # pop RA + jump
    InstClass.MICROCODED: (UopKind.ALU,),
}


def decode_instruction(inst: X86Instruction) -> Tuple[Uop, ...]:
    """Crack a static instruction into its fixed-length uops.

    The decomposition is deterministic: the declared ``uop_count`` slots are
    filled with kinds appropriate to the instruction class, imm/disp fields are
    attached to the leading uops, and for control transfers the *last* uop is
    the branch uop (matching real x86 cracking, where the jump resolves after
    any address-generation/stack uops).
    """
    base_kinds = _CLASS_TO_KINDS[inst.inst_class]
    kinds = list(base_kinds)
    # Pad to uop_count with ALU filler uops (micro-coded expansion); place any
    # branch uop last.
    branch_kinds = [k for k in kinds if k is UopKind.BRANCH]
    kinds = [k for k in kinds if k is not UopKind.BRANCH]
    while len(kinds) + len(branch_kinds) < inst.uop_count:
        kinds.append(UopKind.ALU)
    kinds = kinds[: inst.uop_count - len(branch_kinds)] + branch_kinds

    uops = []
    for slot, kind in enumerate(kinds):
        is_branch_uop = kind is UopKind.BRANCH
        uops.append(Uop(
            pc=inst.address,
            inst_length=inst.length,
            kind=kind,
            slot=slot,
            num_slots=len(kinds),
            has_imm_disp=slot < inst.imm_disp_count,
            is_microcoded=inst.is_microcoded,
            branch_kind=inst.branch_kind if is_branch_uop else BranchKind.NONE,
            branch_target=inst.branch_target if is_branch_uop else None,
        ))
    return tuple(uops)
