"""x86-like instruction and micro-operation (uop) models."""

from .builder import (
    FP_HEAVY_MIX,
    INTEGER_MIX,
    SERVER_MIX,
    InstructionBuilder,
    InstructionMix,
)
from .instruction import MAX_X86_INST_LEN, BranchKind, InstClass, X86Instruction
from .uop import UOP_BITS, UOP_BYTES, Uop, UopKind, decode_instruction

__all__ = [
    "BranchKind",
    "FP_HEAVY_MIX",
    "INTEGER_MIX",
    "InstClass",
    "InstructionBuilder",
    "InstructionMix",
    "MAX_X86_INST_LEN",
    "SERVER_MIX",
    "UOP_BITS",
    "UOP_BYTES",
    "Uop",
    "UopKind",
    "X86Instruction",
    "decode_instruction",
]
